// Minimal JSON emitter for machine-readable benchmark output (BENCH_*.json).
//
// Build a tree of JsonValue nodes and Dump() it. Object keys keep insertion
// order so emitted files diff cleanly run to run. Write-only by design: the
// repo consumes these files from CI tooling (python/jq), never parses them.

#ifndef FORECACHE_COMMON_JSON_WRITER_H_
#define FORECACHE_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fc {

class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  JsonValue(int i) : kind_(Kind::kInt), int_(i) {}
  JsonValue(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  JsonValue(std::uint64_t u) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(u)) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  static JsonValue Object() { return JsonValue(Kind::kObject); }
  static JsonValue Array() { return JsonValue(Kind::kArray); }

  /// Sets (or replaces) an object member; keeps first-set ordering.
  JsonValue& Set(const std::string& key, JsonValue value);

  /// Appends an array element.
  JsonValue& Push(JsonValue value);

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Serializes the tree. `indent` > 0 pretty-prints.
  std::string Dump(int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kInt, kNumber, kString, kObject, kArray };

  explicit JsonValue(Kind kind) : kind_(kind) {}

  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<std::pair<std::string, JsonValue>> members_;  // object
  std::vector<JsonValue> elements_;                         // array
};

/// Writes `value.Dump()` to `path` atomically enough for CI (tmp + rename).
Status WriteJsonFile(const std::string& path, const JsonValue& value);

}  // namespace fc

#endif  // FORECACHE_COMMON_JSON_WRITER_H_
