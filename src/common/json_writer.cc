#include "common/json_writer.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/string_utils.h"

namespace fc {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNewline(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::Push(JsonValue value) {
  elements_.push_back(std::move(value));
  return *this;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      *out += std::to_string(int_);
      return;
    case Kind::kNumber:
      if (std::isfinite(num_)) {
        *out += StrFormat("%.17g", num_);
      } else {
        *out += "null";  // JSON has no Inf/NaN
      }
      return;
    case Kind::kString:
      AppendEscaped(out, str_);
      return;
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out->push_back(',');
        first = false;
        AppendNewline(out, indent, depth + 1);
        AppendEscaped(out, key);
        *out += indent > 0 ? ": " : ":";
        value.DumpTo(out, indent, depth + 1);
      }
      AppendNewline(out, indent, depth);
      out->push_back('}');
      return;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      bool first = true;
      for (const auto& value : elements_) {
        if (!first) out->push_back(',');
        first = false;
        AppendNewline(out, indent, depth + 1);
        value.DumpTo(out, indent, depth + 1);
      }
      AppendNewline(out, indent, depth);
      out->push_back(']');
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

Status WriteJsonFile(const std::string& path, const JsonValue& value) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IoError("cannot open for writing: " + tmp);
    out << value.Dump();
    out.flush();
    if (!out) return Status::IoError("write failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("rename " + tmp + " -> " + path + ": " + ec.message());
  }
  return Status::OK();
}

}  // namespace fc
