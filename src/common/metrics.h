// fc::telemetry — the process-wide metrics registry.
//
// Every serving layer so far grew its own Stats() struct, and latency
// percentiles lived inside individual bench binaries. This registry gives
// the process ONE observable surface: named counters, gauges, and
// fixed-bucket log2 latency histograms, snapshotted together with every
// component's existing Stats() struct (registered as a pull-mode source)
// and exported as JSON or Prometheus text.
//
// Hot-path cost model — the design constraint that shapes everything here:
//
//  * Counter::Add and Histogram::Record are a single relaxed atomic
//    fetch_add on a cache-line-padded cell chosen by thread identity
//    (plus one more for the histogram's sum). No locks, no branches on
//    the recording path beyond the bucket computation.
//  * Sharded cells trade snapshot-time work for hot-path contention:
//    threads hash onto kCells independent lines, and Snapshot() merges
//    them. A snapshot taken while recorders run is a consistent-enough
//    point-in-time read (each cell is read atomically; the merge may
//    straddle concurrent increments, as any monitoring scrape does).
//  * Instrument pointers returned by the registry are STABLE for the
//    registry's lifetime, so components resolve them once at construction
//    and never touch the registry mutex again.
//
// Histogram buckets are powers of two: bucket 0 holds exactly the value
// 0, bucket i (1 <= i < 31) holds [2^(i-1), 2^i - 1], and the last bucket
// is open-ended. 32 buckets cover [0, 2^30) exactly — microsecond
// recordings up to ~18 minutes — which is why every latency histogram in
// the codebase records MICROseconds. Quantiles interpolate linearly
// within a bucket, so they are estimates with relative error bounded by
// the bucket width (a factor of 2), like every fixed-bucket histogram.
//
// Thread-safety: all instrument methods are lock-free and thread-safe.
// Registry methods (GetCounter/GetGauge/GetHistogram/AddSource/
// RemoveSource/Snapshot) serialize on one mutex — they are setup- and
// scrape-path only. Sources run under that mutex during Snapshot(); they
// may take component locks (registry mutex -> component lock is the
// process-wide lock order; no component calls back into the registry
// while holding its own lock — instrument recording never takes the
// registry mutex).

#ifndef FORECACHE_COMMON_METRICS_H_
#define FORECACHE_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json_writer.h"

namespace fc::telemetry {

/// Monotonic event count, sharded across cache-line-padded cells so
/// concurrent recorders from different threads do not contend.
class Counter {
 public:
  static constexpr std::size_t kCells = 16;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Single relaxed fetch_add on this thread's cell.
  void Add(std::uint64_t n = 1) {
    cells_[CellIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Merged value across cells. Concurrent Adds may or may not be seen —
  /// the usual scrape semantics.
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };

  /// Stable per-thread cell choice, cached per thread after first use.
  static std::size_t CellIndex();

  Cell cells_[kCells];
};

/// Last-written instantaneous value (bytes resident, queue depth, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time histogram state, as merged by MetricsSnapshot.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 32;

  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t buckets[kBuckets] = {};

  /// Inclusive upper bound of bucket i (0, then 2^i - 1; the last bucket
  /// reports the largest uint64 — rendered as +Inf by the Prometheus
  /// exporter).
  static std::uint64_t BucketUpperBound(std::size_t i);

  /// Estimated q-quantile (q in [0,1]) by linear interpolation within the
  /// bucket holding the target rank. 0 when empty.
  double Quantile(double q) const;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed-bucket log2 latency histogram. Record() is two relaxed atomic
/// adds (bucket + sum) plus a count add on the recording thread's shard.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;
  static constexpr std::size_t kShards = 8;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket index of `value`: 0 for 0, else min(bit_width(value), 31) —
  /// bucket i holds [2^(i-1), 2^i - 1].
  static std::size_t BucketIndex(std::uint64_t value);

  void Record(std::uint64_t value) {
    Shard& shard = shards_[ShardIndex()];
    shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Merged point-in-time state (name left empty; the registry fills it).
  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kBuckets] = {};
    std::atomic<std::uint64_t> sum{0};
  };

  static std::size_t ShardIndex();

  Shard shards_[kShards];
};

/// Receives one pull-mode source's values during Snapshot(). Values land
/// next to the registry's own instruments under the same names rules
/// (sorted on export; later writes to a repeated name win).
class SnapshotSink {
 public:
  void AddCounter(const std::string& name, std::uint64_t value);
  void AddGauge(const std::string& name, double value);

 private:
  friend class MetricsRegistry;
  std::map<std::string, std::uint64_t>* counters_ = nullptr;
  std::map<std::string, double>* gauges_ = nullptr;
};

/// One consistent scrape of the whole registry: every instrument plus
/// every pull-mode source, name-sorted.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::vector<HistogramSnapshot> histograms;  ///< Name-sorted.

  /// The named histogram, or nullptr.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
  /// The named counter's value, or `fallback`.
  std::uint64_t CounterOr(const std::string& name,
                          std::uint64_t fallback = 0) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, mean, p50, p99, p999, buckets: [32 counts]}}} — keys sorted, so
  /// the output is deterministic for golden tests.
  JsonValue ToJson() const;

  /// Prometheus text exposition format. Metric names are sanitized
  /// (dots/dashes -> underscores); histograms render cumulative
  /// `_bucket{le="..."}` series plus `_sum` and `_count`.
  std::string ToPrometheusText() const;
};

/// The process-wide instrument directory. Components resolve stable
/// instrument pointers at construction time; monitoring scrapes one
/// Snapshot() covering instruments and registered Stats() sources alike.
/// The registry must outlive every component holding its instruments, and
/// sources must be removed before the component they read dies.
class MetricsRegistry {
 public:
  using Source = std::function<void(SnapshotSink&)>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named instrument, creating it on first use. The pointer
  /// is stable for the registry's lifetime. One name maps to one
  /// instrument kind — Get'ing the same name as a different kind returns
  /// a distinct instrument exported under the same name (don't).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Registers a pull-mode source invoked on every Snapshot() — the
  /// adapter hook that folds existing component Stats() structs into the
  /// scrape. Returns an id for RemoveSource.
  std::uint64_t AddSource(Source source);
  void RemoveSource(std::uint64_t id);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<std::pair<std::uint64_t, Source>> sources_;
  std::uint64_t next_source_id_ = 1;
};

/// Folds the process-wide logging event counters (common/logging.h) into
/// `registry` as fc.log.warnings / fc.log.errors, so a snapshot shows
/// error rates next to throughput. Returns the source id.
std::uint64_t RegisterLogEventMetrics(MetricsRegistry* registry);

}  // namespace fc::telemetry

#endif  // FORECACHE_COMMON_METRICS_H_
