#include "common/status.h"

#include <utility>

namespace fc {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid argument";
    case StatusCode::kNotFound: return "not found";
    case StatusCode::kAlreadyExists: return "already exists";
    case StatusCode::kOutOfRange: return "out of range";
    case StatusCode::kFailedPrecondition: return "failed precondition";
    case StatusCode::kResourceExhausted: return "resource exhausted";
    case StatusCode::kIoError: return "io error";
    case StatusCode::kCorruption: return "corruption";
    case StatusCode::kNotImplemented: return "not implemented";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
Status Status::Corruption(std::string msg) {
  return Status(StatusCode::kCorruption, std::move(msg));
}
Status Status::NotImplemented(std::string msg) {
  return Status(StatusCode::kNotImplemented, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

std::string_view Status::message() const {
  return rep_ ? std::string_view(rep_->message) : std::string_view();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  if (!rep_->message.empty()) {
    out += ": ";
    out += rep_->message;
  }
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += rep_->message;
  return Status(code(), std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace fc
