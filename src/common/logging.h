// Minimal leveled logging + invariant checks.

#ifndef FORECACHE_COMMON_LOGGING_H_
#define FORECACHE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace fc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Default: kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Consumes a LogMessage stream when the level is suppressed.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

}  // namespace internal
}  // namespace fc

#define FC_LOG_INTERNAL(level) \
  ::fc::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define FC_LOG(severity) \
  FC_LOG_##severity

#define FC_LOG_DEBUG FC_LOG_INTERNAL(::fc::LogLevel::kDebug)
#define FC_LOG_INFO FC_LOG_INTERNAL(::fc::LogLevel::kInfo)
#define FC_LOG_WARNING FC_LOG_INTERNAL(::fc::LogLevel::kWarning)
#define FC_LOG_ERROR FC_LOG_INTERNAL(::fc::LogLevel::kError)

/// Aborts with a diagnostic if `condition` is false. Active in all builds:
/// these guard internal invariants whose violation would corrupt results.
#define FC_CHECK(condition)                                              \
  while (!(condition))                                                   \
  ::fc::internal::CheckFailed(__FILE__, __LINE__, #condition, "")

#define FC_CHECK_MSG(condition, msg)                                     \
  while (!(condition))                                                   \
  ::fc::internal::CheckFailed(__FILE__, __LINE__, #condition, (msg))

#endif  // FORECACHE_COMMON_LOGGING_H_
