// Minimal leveled logging + invariant checks.

#ifndef FORECACHE_COMMON_LOGGING_H_
#define FORECACHE_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace fc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Default: kInfo,
/// overridable at process start via the FC_LOG_LEVEL environment variable
/// ("debug"/"info"/"warning"/"error", case-insensitive, or 0-3).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses an FC_LOG_LEVEL-style value; `fallback` for null/unrecognized.
LogLevel ParseLogLevel(const char* value, LogLevel fallback);

/// Cumulative WARNING/ERROR messages emitted since process start. Counted
/// even while suppressed by the level filter (a suppressed error is still
/// an error) — telemetry folds these into the metrics snapshot so error
/// rates show up next to throughput (telemetry::RegisterLogEventMetrics).
struct LogEventCounts {
  std::uint64_t warnings = 0;
  std::uint64_t errors = 0;
};
LogEventCounts GetLogEventCounts();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Consumes a LogMessage stream when the level is suppressed.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

}  // namespace internal
}  // namespace fc

#define FC_LOG_INTERNAL(level) \
  ::fc::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define FC_LOG(severity) \
  FC_LOG_##severity

#define FC_LOG_DEBUG FC_LOG_INTERNAL(::fc::LogLevel::kDebug)
#define FC_LOG_INFO FC_LOG_INTERNAL(::fc::LogLevel::kInfo)
#define FC_LOG_WARNING FC_LOG_INTERNAL(::fc::LogLevel::kWarning)
#define FC_LOG_ERROR FC_LOG_INTERNAL(::fc::LogLevel::kError)

/// Aborts with a diagnostic if `condition` is false. Active in all builds:
/// these guard internal invariants whose violation would corrupt results.
#define FC_CHECK(condition)                                              \
  while (!(condition))                                                   \
  ::fc::internal::CheckFailed(__FILE__, __LINE__, #condition, "")

#define FC_CHECK_MSG(condition, msg)                                     \
  while (!(condition))                                                   \
  ::fc::internal::CheckFailed(__FILE__, __LINE__, #condition, (msg))

#endif  // FORECACHE_COMMON_LOGGING_H_
