// Result<T>: a Status or a value, never both.

#ifndef FORECACHE_COMMON_RESULT_H_
#define FORECACHE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/status.h"

namespace fc {

/// Holds either a value of type T or a non-OK Status.
///
/// Use `FC_ASSIGN_OR_RETURN(auto v, MaybeProduce())` in functions that
/// themselves return Status/Result to propagate errors.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a Status: failure. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the value. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

namespace internal {
// ConsumeResultValue moves the value out of an rvalue Result.
template <typename T>
T ConsumeResultValue(Result<T>&& result) {
  return std::move(result).value();
}
}  // namespace internal

}  // namespace fc

#define FC_RESULT_CONCAT_INNER_(a, b) a##b
#define FC_RESULT_CONCAT_(a, b) FC_RESULT_CONCAT_INNER_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define FC_ASSIGN_OR_RETURN(lhs, rexpr)                                     \
  auto FC_RESULT_CONCAT_(_fc_result_, __LINE__) = (rexpr);                  \
  if (!FC_RESULT_CONCAT_(_fc_result_, __LINE__).ok())                       \
    return FC_RESULT_CONCAT_(_fc_result_, __LINE__).status();               \
  lhs = ::fc::internal::ConsumeResultValue(                                 \
      std::move(FC_RESULT_CONCAT_(_fc_result_, __LINE__)))

#endif  // FORECACHE_COMMON_RESULT_H_
