// Small numeric helpers shared across modules: summary statistics,
// ordinary-least-squares regression, and vector norms/distances.

#ifndef FORECACHE_COMMON_MATH_UTILS_H_
#define FORECACHE_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <vector>

namespace fc {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Population standard deviation; 0 for fewer than 2 elements.
double StdDev(const std::vector<double>& xs);

/// Sample variance (n-1 denominator); 0 for fewer than 2 elements.
double SampleVariance(const std::vector<double>& xs);

/// p-th percentile (p in [0,100]) by linear interpolation; 0 if empty.
double Percentile(std::vector<double> xs, double p);

/// Result of a simple (y = intercept + slope * x) least-squares fit.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;      ///< Coefficient of determination.
  double adj_r_squared = 0.0;  ///< Adjusted for the single predictor.
  std::size_t n = 0;
};

/// Ordinary least squares over paired samples. Requires xs.size() == ys.size().
/// With fewer than 2 points, returns a zero fit.
LinearFit FitLinear(const std::vector<double>& xs, const std::vector<double>& ys);

/// Euclidean (L2) norm.
double L2Norm(const std::vector<double>& v);

/// Weighted L2 norm: sqrt(sum_i w_i * v_i^2). Sizes must match.
double WeightedL2Norm(const std::vector<double>& v, const std::vector<double>& w);

/// L1 distance between equal-length vectors.
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

/// L2 distance between equal-length vectors.
double L2Distance(const std::vector<double>& a, const std::vector<double>& b);

/// Chi-squared histogram distance: 0.5 * sum (a-b)^2 / (a+b), terms with
/// a+b == 0 skipped. Standard metric for comparing (unnormalized) histograms.
double ChiSquaredDistance(const std::vector<double>& a, const std::vector<double>& b);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);
int ClampInt(int x, int lo, int hi);

/// Normalizes v to sum 1 in place; no-op if the sum is not positive.
void NormalizeToSum1(std::vector<double>* v);

}  // namespace fc

#endif  // FORECACHE_COMMON_MATH_UTILS_H_
