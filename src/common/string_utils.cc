#include "common/string_utils.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace fc {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

Result<long long> ParseInt(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return v;
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty double");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("double overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: " + buf);
  }
  return v;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace fc
