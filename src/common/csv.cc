#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace fc {

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::string CsvRow(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    out += CsvEscape(fields[i]);
  }
  return out;
}

Result<std::vector<std::string>> CsvParseLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        current += c;
        ++i;
      }
    } else {
      if (c == '"') {
        in_quotes = true;
        ++i;
      } else if (c == ',') {
        fields.push_back(std::move(current));
        current.clear();
        ++i;
      } else {
        current += c;
        ++i;
      }
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quote in CSV line");
  fields.push_back(std::move(current));
  return fields;
}

Status CsvWriteFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  for (const auto& row : rows) {
    out << CsvRow(row) << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> CsvReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    FC_ASSIGN_OR_RETURN(auto fields, CsvParseLine(line));
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace fc
