// fc::telemetry request-path tracing: where did a slow request spend its
// time?
//
// A trace is born at the serving edge (ForeCacheServer::HandleRequest
// calls TraceSink::StartTrace) and its id rides the request through the
// stack — cache lookup, prediction publish, the cross-session scheduler's
// batched fetch, the push channel's chunk pushes. Each instrumented
// section opens an RAII Span; closing it records one TraceEvent
// {trace_id, session_id, name, start_ms, end_ms} into the sink.
//
// Span taxonomy (docs/observability.md has the full table):
//   request.handle     whole HandleRequest, session thread
//   cache.lookup       region/shared-cache lookup incl. demand miss fetch
//   prefetch.publish   BeginPrefetch + scheduler Publish
//   prefetch.fetch     one drain round's backend fetch (scheduler thread)
//   stream.push        one chunk handed to the session's sink
//
// Cost model: sampling is decided ONCE per request at StartTrace (1-in-N
// head sampling). An unsampled request carries trace_id 0, and every Span
// built from it is fully inert — no clock reads, no sink calls, no
// allocation. Propagating the id downstream is a uint64 copy. So the
// hot-path overhead of tracing is one atomic increment per request plus
// an integer modulo, regardless of instrumentation density.
//
// Stamps ride the same fc::Clock the component already schedules on —
// virtual SimClock time in the replay harness (deterministic goldens),
// monotonic wall time in deployments. Events from one thread are
// monotone; cross-thread ordering is whatever the clock says.
//
// The sink is a bounded ring buffer: recording overwrites the oldest
// event past capacity (dropped_events counts them) — tracing must never
// be the memory leak it was built to find.
//
// Thread-safety: all TraceSink methods are thread-safe (one mutex; the
// sampling decision is an atomic). Span is confined to the thread (or
// the handoff) that owns it, like any RAII guard.

#ifndef FORECACHE_COMMON_TRACE_H_
#define FORECACHE_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/json_writer.h"

namespace fc::telemetry {

/// The identity a request carries through the stack. trace_id 0 means
/// unsampled: spans built from it are inert. Copyable by value — that IS
/// the propagation mechanism.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t session_id = 0;
  bool sampled() const { return trace_id != 0; }
};

/// One closed span.
struct TraceEvent {
  std::uint64_t trace_id = 0;
  std::uint64_t session_id = 0;
  const char* name = "";  ///< Static string (span taxonomy above).
  double start_ms = 0.0;
  double end_ms = 0.0;
};

struct TraceSinkOptions {
  /// Ring capacity in events; recording past it overwrites the oldest
  /// (counted in dropped_events). Clamped to >= 1.
  std::size_t capacity = 4096;
  /// Head sampling: trace 1 of every N requests (1 = every request).
  std::uint64_t sample_every = 1;
  /// Stamp source. Null records every stamp as 0 — spans still order by
  /// ring position, but a real sink should always have a clock.
  const Clock* clock = nullptr;
};

/// Bounded ring-buffer trace store, shared by every instrumented
/// component of a serving stack.
class TraceSink {
 public:
  explicit TraceSink(TraceSinkOptions options = {});

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Mints the context for a new request: monotone trace ids, the first
  /// and every sample_every-th sampled. Unsampled requests get trace_id 0
  /// (their downstream spans are inert).
  TraceContext StartTrace(std::uint64_t session_id);

  /// Appends one event (oldest overwritten past capacity). Callers guard
  /// on ctx.sampled() — Span does this for you.
  void Record(const TraceEvent& event);

  double NowMillis() const {
    return options_.clock == nullptr ? 0.0 : options_.clock->NowMillis();
  }

  /// Buffered events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  std::uint64_t recorded_events() const;
  std::uint64_t dropped_events() const;
  std::uint64_t started_traces() const;

  /// {"dropped_events": n, "events": [{trace, session, name, start_ms,
  /// end_ms}...]} oldest first — the dump format docs/observability.md
  /// documents.
  JsonValue ToJson() const;

 private:
  TraceSinkOptions options_;
  std::atomic<std::uint64_t> next_trace_id_{1};

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  ///< Ring write position.
  std::size_t size_ = 0;  ///< Valid events in the ring.
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// RAII span: stamps start at construction, records the event at End()
/// or destruction. Inert (no clock reads, no recording) when the sink is
/// null or the context unsampled, so instrumented code never branches on
/// "is tracing on" itself.
class Span {
 public:
  Span() = default;

  Span(TraceSink* sink, const char* name, const TraceContext& ctx)
      : sink_(ctx.sampled() ? sink : nullptr), name_(name), ctx_(ctx) {
    if (sink_ != nullptr) start_ms_ = sink_->NowMillis();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { End(); }

  /// Closes the span early (idempotent).
  void End() {
    if (sink_ == nullptr) return;
    sink_->Record(TraceEvent{ctx_.trace_id, ctx_.session_id, name_, start_ms_,
                             sink_->NowMillis()});
    sink_ = nullptr;
  }

 private:
  TraceSink* sink_ = nullptr;  ///< Null once closed or when inert.
  const char* name_ = "";
  TraceContext ctx_;
  double start_ms_ = 0.0;
};

}  // namespace fc::telemetry

#endif  // FORECACHE_COMMON_TRACE_H_
