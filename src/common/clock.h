// Clock: the read-only time interface behind deadline scheduling and batch
// lingering.
//
// The scheduler, think-time estimator, and batch planner only ever READ
// time — they ask "what is now?" to stamp enqueue ages and deadlines and to
// age lingering batches. Simulation code additionally ADVANCES time, but
// that is a property of the simulation harness (SimClock), not of the
// consumers. Splitting the read interface out lets the exact same deadline
// and linger machinery run against either time base:
//
//  * SimClock (common/sim_clock.h): the virtual clock replay experiments
//    charge simulated service time to. Implements Clock.
//  * SteadyClock (below): a monotonic wall-clock adapter over
//    std::chrono::steady_clock, for real deployments — think-time deadlines
//    mean nothing outside the sim if they can only be measured in virtual
//    time.
//
// Milliseconds were chosen as the unit because every existing consumer
// (deadlines, think-time EWMAs, linger ages) already works in fractional
// virtual milliseconds.

#ifndef FORECACHE_COMMON_CLOCK_H_
#define FORECACHE_COMMON_CLOCK_H_

#include <chrono>

namespace fc {

/// Read-only monotonic time source, fractional milliseconds since an
/// arbitrary (per-instance) epoch. Implementations must be thread-safe for
/// concurrent reads; only differences between readings are meaningful.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in (fractional) milliseconds since this clock's epoch.
  /// Never decreases.
  virtual double NowMillis() const = 0;
};

/// Monotonic wall-clock adapter: NowMillis() is real elapsed time since
/// construction, measured on std::chrono::steady_clock (immune to wall
/// time adjustments — a deadline must never jump because NTP stepped the
/// system clock). Thread-safe; the epoch is immutable after construction.
class SteadyClock final : public Clock {
 public:
  SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}

  double NowMillis() const override {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  const std::chrono::steady_clock::time_point epoch_;
};

}  // namespace fc

#endif  // FORECACHE_COMMON_CLOCK_H_
