// Virtual time for latency simulation.
//
// Latency experiments replay thousands of tile requests whose simulated
// service times sum to minutes of "user time"; SimClock advances a virtual
// microsecond counter instead of sleeping, so the full experiment grid runs
// in real seconds while preserving all latency arithmetic.

#ifndef FORECACHE_COMMON_SIM_CLOCK_H_
#define FORECACHE_COMMON_SIM_CLOCK_H_

#include <cstdint>

namespace fc {

/// Monotonic virtual clock, microsecond resolution.
class SimClock {
 public:
  SimClock() = default;

  /// Current virtual time in microseconds since construction.
  std::int64_t NowMicros() const { return now_micros_; }

  /// Current virtual time in (fractional) milliseconds.
  double NowMillis() const { return static_cast<double>(now_micros_) / 1000.0; }

  /// Advances the clock. Negative durations are ignored.
  void AdvanceMicros(std::int64_t micros) {
    if (micros > 0) now_micros_ += micros;
  }

  void AdvanceMillis(double millis) {
    AdvanceMicros(static_cast<std::int64_t>(millis * 1000.0));
  }

  /// Resets to time zero.
  void Reset() { now_micros_ = 0; }

 private:
  std::int64_t now_micros_ = 0;
};

/// A scoped stopwatch over a SimClock: measures virtual elapsed time.
class SimStopwatch {
 public:
  explicit SimStopwatch(const SimClock& clock)
      : clock_(clock), start_micros_(clock.NowMicros()) {}

  std::int64_t ElapsedMicros() const { return clock_.NowMicros() - start_micros_; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedMicros()) / 1000.0; }

 private:
  const SimClock& clock_;
  std::int64_t start_micros_;
};

}  // namespace fc

#endif  // FORECACHE_COMMON_SIM_CLOCK_H_
