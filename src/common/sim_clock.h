// Virtual time for latency simulation.
//
// Latency experiments replay thousands of tile requests whose simulated
// service times sum to minutes of "user time"; SimClock advances a virtual
// microsecond counter instead of sleeping, so the full experiment grid runs
// in real seconds while preserving all latency arithmetic.

#ifndef FORECACHE_COMMON_SIM_CLOCK_H_
#define FORECACHE_COMMON_SIM_CLOCK_H_

#include <atomic>
#include <cmath>
#include <cstdint>

#include "common/clock.h"

namespace fc {

/// Monotonic virtual clock, microsecond resolution. Implements the Clock
/// read interface (common/clock.h), so deadline scheduling and batch
/// lingering run against it interchangeably with the wall-clock adapter.
///
/// Thread-safe: concurrent sessions share one clock, and background prefetch
/// tasks charge DBMS time to it while request threads read it. Advances are
/// atomic, so no charged microsecond is ever lost; under concurrency the
/// interleaving of advances (and hence any single thread's observed elapsed
/// time) is of course schedule-dependent.
class SimClock : public Clock {
 public:
  SimClock() = default;

  /// Current virtual time in microseconds since construction.
  std::int64_t NowMicros() const {
    return now_micros_.load(std::memory_order_relaxed);
  }

  /// Current virtual time in (fractional) milliseconds.
  double NowMillis() const override {
    return static_cast<double>(NowMicros()) / 1000.0;
  }

  /// Advances the clock. Negative durations are ignored.
  void AdvanceMicros(std::int64_t micros) {
    if (micros > 0) now_micros_.fetch_add(micros, std::memory_order_relaxed);
  }

  /// Rounds to the nearest microsecond. Truncation here would make repeated
  /// sub-microsecond advances (e.g. many tiny per-item charge fractions)
  /// silently lose virtual time: 1000 advances of 0.0009 ms must move the
  /// clock ~0.9 ms, not 0.
  void AdvanceMillis(double millis) {
    AdvanceMicros(static_cast<std::int64_t>(std::llround(millis * 1000.0)));
  }

  /// Resets to time zero. Not safe to race with concurrent advances.
  void Reset() { now_micros_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> now_micros_{0};
};

/// A scoped stopwatch over a SimClock: measures virtual elapsed time.
class SimStopwatch {
 public:
  explicit SimStopwatch(const SimClock& clock)
      : clock_(clock), start_micros_(clock.NowMicros()) {}

  std::int64_t ElapsedMicros() const { return clock_.NowMicros() - start_micros_; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedMicros()) / 1000.0; }

 private:
  const SimClock& clock_;
  std::int64_t start_micros_;
};

}  // namespace fc

#endif  // FORECACHE_COMMON_SIM_CLOCK_H_
