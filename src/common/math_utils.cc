#include "common/math_utils.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fc {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mean = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mean = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(xs.size() - 1);
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = Clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

LinearFit FitLinear(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  fit.n = xs.size();
  if (xs.size() < 2) return fit;
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      double pred = fit.intercept + fit.slope * xs[i];
      ss_res += (ys[i] - pred) * (ys[i] - pred);
    }
    fit.r_squared = 1.0 - ss_res / syy;
    auto n = static_cast<double>(xs.size());
    if (n > 2.0) {
      fit.adj_r_squared = 1.0 - (1.0 - fit.r_squared) * (n - 1.0) / (n - 2.0);
    } else {
      fit.adj_r_squared = fit.r_squared;
    }
  } else {
    fit.r_squared = 1.0;
    fit.adj_r_squared = 1.0;
  }
  return fit;
}

double L2Norm(const std::vector<double>& v) {
  double ss = 0.0;
  for (double x : v) ss += x * x;
  return std::sqrt(ss);
}

double WeightedL2Norm(const std::vector<double>& v, const std::vector<double>& w) {
  assert(v.size() == w.size());
  double ss = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) ss += w[i] * v[i] * v[i];
  return std::sqrt(ss);
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

double L2Distance(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double ss = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    ss += d * d;
  }
  return std::sqrt(ss);
}

double ChiSquaredDistance(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double denom = a[i] + b[i];
    if (denom > 0.0) {
      double d = a[i] - b[i];
      sum += d * d / denom;
    }
  }
  return 0.5 * sum;
}

double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

int ClampInt(int x, int lo, int hi) { return std::max(lo, std::min(hi, x)); }

void NormalizeToSum1(std::vector<double>* v) {
  double sum = 0.0;
  for (double x : *v) sum += x;
  if (sum <= 0.0) return;
  for (double& x : *v) x /= sum;
}

}  // namespace fc
