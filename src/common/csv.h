// Tiny CSV reader/writer used for trace logs and experiment output.
// Handles quoting of fields containing commas, quotes, or newlines.

#ifndef FORECACHE_COMMON_CSV_H_
#define FORECACHE_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace fc {

/// Escapes one CSV field (adds quotes only when needed).
std::string CsvEscape(const std::string& field);

/// Renders one CSV row (no trailing newline).
std::string CsvRow(const std::vector<std::string>& fields);

/// Parses one CSV line into fields; understands quoted fields with doubled
/// quotes. Returns InvalidArgument on an unterminated quote.
Result<std::vector<std::string>> CsvParseLine(const std::string& line);

/// Writes rows (each a vector of fields) to `path`, overwriting.
Status CsvWriteFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

/// Reads all rows from `path`. Empty lines are skipped.
Result<std::vector<std::vector<std::string>>> CsvReadFile(const std::string& path);

}  // namespace fc

#endif  // FORECACHE_COMMON_CSV_H_
