// Executor: a fixed-size thread pool for background work.
//
// The serving stack uses it to move prefetch-region fills off the request
// path (paper section 3: prefetching happens during user think time, so it
// must not serialize with request handling). Tasks are plain closures; the
// pool makes no ordering guarantee across tasks, only FIFO dispatch.

#ifndef FORECACHE_COMMON_EXECUTOR_H_
#define FORECACHE_COMMON_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fc {

/// Fixed pool of worker threads draining a FIFO task queue. All methods are
/// thread-safe. The destructor drains the queue, then joins every worker.
class Executor {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit Executor(std::size_t num_threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues a task. Returns false (and drops the task) after Shutdown();
  /// callers tracking pending work must only count accepted tasks.
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. Tasks
  /// submitted while waiting extend the wait.
  void Wait();

  /// Stops accepting work, drains outstanding tasks, joins the workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  std::size_t num_threads() const { return threads_.size(); }

  /// Cumulative count of tasks that finished running.
  std::uint64_t tasks_completed() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t running_ = 0;  ///< Tasks currently executing.
  std::uint64_t completed_ = 0;
  bool shutdown_ = false;
};

}  // namespace fc

#endif  // FORECACHE_COMMON_EXECUTOR_H_
