#include "common/executor.h"

namespace fc {

Executor::Executor(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() { Shutdown(); }

bool Executor::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return true;
}

void Executor::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void Executor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t Executor::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      ++completed_;
      if (queue_.empty() && running_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace fc
