#include "common/trace.h"

#include <algorithm>

namespace fc::telemetry {

TraceSink::TraceSink(TraceSinkOptions options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.sample_every == 0) options_.sample_every = 1;
  ring_.resize(options_.capacity);
}

TraceContext TraceSink::StartTrace(std::uint64_t session_id) {
  const std::uint64_t id =
      next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  TraceContext ctx;
  ctx.session_id = session_id;
  // Head sampling on the minted id: ids 1, 1+N, 1+2N, ... are sampled, so
  // the very first request of a deterministic replay always traces.
  if ((id - 1) % options_.sample_every == 0) ctx.trace_id = id;
  return ctx;
}

void TraceSink::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ == ring_.size()) {
    ++dropped_;  // overwriting the oldest buffered event
  } else {
    ++size_;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % ring_.size();
  ++recorded_;
}

std::vector<TraceEvent> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest first: the ring's write position is one past the newest event.
  const std::size_t start = (next_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceSink::recorded_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t TraceSink::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t TraceSink::started_traces() const {
  return next_trace_id_.load(std::memory_order_relaxed) - 1;
}

JsonValue TraceSink::ToJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  JsonValue root = JsonValue::Object();
  root.Set("dropped_events", JsonValue(dropped_events()));
  JsonValue array = JsonValue::Array();
  for (const TraceEvent& event : events) {
    JsonValue entry = JsonValue::Object();
    entry.Set("trace", JsonValue(event.trace_id));
    entry.Set("session", JsonValue(event.session_id));
    entry.Set("name", JsonValue(event.name));
    entry.Set("start_ms", JsonValue(event.start_ms));
    entry.Set("end_ms", JsonValue(event.end_ms));
    array.Push(std::move(entry));
  }
  root.Set("events", std::move(array));
  return root;
}

}  // namespace fc::telemetry
