#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>

#include "common/logging.h"

namespace fc::telemetry {

namespace {

/// Stable small index for the calling thread, computed once per thread.
/// Distinct threads may share an index (it is a hash); correctness never
/// depends on uniqueness, only contention does.
std::size_t ThreadSlot() {
  static thread_local const std::size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return slot;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
/// names map onto underscores.
std::string SanitizePrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

/// Formats a double the way the JSON writer does not need to: Prometheus
/// accepts plain decimal; trim to a stable short form for goldens.
std::string FormatDouble(double value) {
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

}  // namespace

std::size_t Counter::CellIndex() { return ThreadSlot() % kCells; }

std::size_t Histogram::ShardIndex() { return ThreadSlot() % kShards; }

std::size_t Histogram::BucketIndex(std::uint64_t value) {
  if (value == 0) return 0;
  const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
  return std::min(width, kBuckets - 1);
}

std::uint64_t HistogramSnapshot::BucketUpperBound(std::size_t i) {
  if (i == 0) return 0;
  if (i >= kBuckets - 1) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << i) - 1;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based; ceil so p0 -> rank 1.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] < rank) {
      cumulative += buckets[i];
      continue;
    }
    // Interpolate linearly within [lower, upper] of this bucket. The last
    // bucket is open-ended; report its lower bound (no width to spread
    // over without inventing a max).
    const double lower =
        i == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (i - 1));
    if (i == 0) return 0.0;
    if (i >= kBuckets - 1) return lower;
    const double upper = static_cast<double>(BucketUpperBound(i));
    const double into =
        static_cast<double>(rank - cumulative - 1) /
        static_cast<double>(buckets[i]);
    return lower + into * (upper - lower);
  }
  return 0.0;  // unreachable while count matches the buckets
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t n = shard.buckets[i].load(std::memory_order_relaxed);
      snap.buckets[i] += n;
      snap.count += n;
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

void SnapshotSink::AddCounter(const std::string& name, std::uint64_t value) {
  (*counters_)[name] = value;
}

void SnapshotSink::AddGauge(const std::string& name, double value) {
  (*gauges_)[name] = value;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::uint64_t MetricsRegistry::AddSource(Source source) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_source_id_++;
  sources_.emplace_back(id, std::move(source));
  return id;
}

void MetricsRegistry::RemoveSource(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sources_.begin(); it != sources_.end(); ++it) {
    if (it->first == id) {
      sources_.erase(it);
      return;
    }
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h = histogram->Snapshot();
    h.name = name;
    snap.histograms.push_back(std::move(h));
  }
  // Sources run under the registry mutex (they may take component locks;
  // nothing on the recording path takes this mutex, so no inversion).
  SnapshotSink sink;
  sink.counters_ = &snap.counters;
  sink.gauges_ = &snap.gauges;
  for (const auto& [id, source] : sources_) source(sink);
  return snap;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::CounterOr(const std::string& name,
                                         std::uint64_t fallback) const {
  auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue root = JsonValue::Object();
  JsonValue counters_obj = JsonValue::Object();
  for (const auto& [name, value] : counters) {
    counters_obj.Set(name, JsonValue(value));
  }
  root.Set("counters", std::move(counters_obj));
  JsonValue gauges_obj = JsonValue::Object();
  for (const auto& [name, value] : gauges) {
    gauges_obj.Set(name, JsonValue(value));
  }
  root.Set("gauges", std::move(gauges_obj));
  JsonValue histograms_obj = JsonValue::Object();
  for (const HistogramSnapshot& h : histograms) {
    JsonValue entry = JsonValue::Object();
    entry.Set("count", JsonValue(h.count));
    entry.Set("sum", JsonValue(h.sum));
    entry.Set("mean", JsonValue(h.Mean()));
    entry.Set("p50", JsonValue(h.Quantile(0.50)));
    entry.Set("p99", JsonValue(h.Quantile(0.99)));
    entry.Set("p999", JsonValue(h.Quantile(0.999)));
    JsonValue buckets = JsonValue::Array();
    for (std::uint64_t b : h.buckets) {
      buckets.Push(JsonValue(b));
    }
    entry.Set("buckets", std::move(buckets));
    histograms_obj.Set(h.name, std::move(entry));
  }
  root.Set("histograms", std::move(histograms_obj));
  return root;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    const std::string prom = SanitizePrometheusName(name);
    out << "# TYPE " << prom << " counter\n";
    out << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string prom = SanitizePrometheusName(name);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << " " << FormatDouble(value) << "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string prom = SanitizePrometheusName(h.name);
    out << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      cumulative += h.buckets[i];
      // Skip interior empty buckets to keep the exposition compact, but
      // always emit a bucket whose cumulative count changed plus the
      // first (le="0") so scrapers see the floor.
      if (i > 0 && h.buckets[i] == 0 &&
          i != HistogramSnapshot::kBuckets - 1) {
        continue;
      }
      out << prom << "_bucket{le=\"";
      if (i == HistogramSnapshot::kBuckets - 1) {
        out << "+Inf";
      } else {
        out << HistogramSnapshot::BucketUpperBound(i);
      }
      out << "\"} " << cumulative << "\n";
    }
    out << prom << "_sum " << h.sum << "\n";
    out << prom << "_count " << h.count << "\n";
  }
  return out.str();
}

std::uint64_t RegisterLogEventMetrics(MetricsRegistry* registry) {
  return registry->AddSource([](SnapshotSink& sink) {
    const LogEventCounts counts = GetLogEventCounts();
    sink.AddCounter("fc.log.warnings", counts.warnings);
    sink.AddCounter("fc.log.errors", counts.errors);
  });
}

}  // namespace fc::telemetry
