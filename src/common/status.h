// Status: the error-handling currency of ForeCache.
//
// Public APIs in this codebase do not throw exceptions across library
// boundaries (RocksDB/Arrow idiom). Fallible operations return fc::Status, or
// fc::Result<T> (see result.h) when they also produce a value.

#ifndef FORECACHE_COMMON_STATUS_H_
#define FORECACHE_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>

namespace fc {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kIoError = 7,
  kCorruption = 8,
  kNotImplemented = 9,
  kInternal = 10,
};

/// Returns the canonical lower-case name of a StatusCode ("ok", "not found"...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, movable success-or-error value.
///
/// The OK state carries no allocation; error states carry a code plus a
/// human-readable message. Statuses are comparable by code and message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status IoError(std::string msg);
  static Status Corruption(std::string msg);
  static Status NotImplemented(std::string msg);
  static Status Internal(std::string msg);

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// The error message; empty for OK.
  std::string_view message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const { return code() == StatusCode::kFailedPrecondition; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Explicitly discards the status (fire-and-forget call sites).
  void IgnoreError() const {}

  /// Prepends `context` to the message, preserving the code. No-op for OK.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // nullptr <=> OK. Errors are rare; OK stays allocation-free.
  std::unique_ptr<Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace fc

/// Propagates a non-OK Status to the caller.
#define FC_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::fc::Status _fc_status = (expr);            \
    if (!_fc_status.ok()) return _fc_status;     \
  } while (false)

#endif  // FORECACHE_COMMON_STATUS_H_
