// String helpers: splitting, joining, trimming, and printf-style formatting.

#ifndef FORECACHE_COMMON_STRING_UTILS_H_
#define FORECACHE_COMMON_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fc {

/// Splits on a single-character delimiter. Adjacent delimiters yield empty
/// fields; an empty input yields one empty field.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins parts with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses an integer/double, rejecting trailing garbage.
Result<long long> ParseInt(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// True if `s` starts with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace fc

#endif  // FORECACHE_COMMON_STRING_UTILS_H_
