#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace fc {

namespace {
constexpr std::uint64_t kPcgMultiplier = 6364136223846793005ULL;
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  NextUint32();
  state_ += HashSeed(seed);
  NextUint32();
}

std::uint32_t Rng::NextUint32() {
  std::uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::NextUint64() {
  return (static_cast<std::uint64_t>(NextUint32()) << 32) | NextUint32();
}

std::uint32_t Rng::UniformUint32(std::uint32_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    std::uint32_t r = NextUint32();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformInt(int lo, int hi) {
  assert(lo <= hi);
  auto span = static_cast<std::uint32_t>(static_cast<std::int64_t>(hi) - lo + 1);
  return lo + static_cast<int>(UniformUint32(span));
}

double Rng::UniformDouble() {
  // 53 random bits -> [0,1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  spare_gaussian_ = radius * std::sin(theta);
  has_spare_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return UniformUint32(static_cast<std::uint32_t>(weights.size()));
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) {
      acc += weights[i];
      if (target < acc) return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64(), NextUint64() >> 1); }

std::uint64_t HashSeed(std::uint64_t x) {
  // SplitMix64 finalizer.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t CombineSeeds(std::uint64_t a, std::uint64_t b) {
  return HashSeed(a ^ (HashSeed(b) + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

}  // namespace fc
