// Trace replay: the paper's accuracy protocol (section 5.2.2).
//
// Step through a request log; after each request collect the model's ranked
// prediction list trimmed to the fetch budget k; a hit means the next
// requested tile was in the list. Accuracy == middleware-cache hit rate.

#ifndef FORECACHE_EVAL_REPLAY_H_
#define FORECACHE_EVAL_REPLAY_H_

#include <array>

#include "core/request.h"
#include "eval/predictor.h"

namespace fc::eval {

struct PhaseAccuracy {
  std::size_t hits = 0;
  std::size_t total = 0;

  double Rate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
  void Merge(const PhaseAccuracy& other) {
    hits += other.hits;
    total += other.total;
  }
};

struct AccuracyReport {
  PhaseAccuracy overall;
  /// Indexed by AnalysisPhase; a prediction is attributed to the phase of
  /// the request being predicted (the next request).
  std::array<PhaseAccuracy, core::kNumPhases> per_phase;

  void Merge(const AccuracyReport& other);
  const PhaseAccuracy& ForPhase(core::AnalysisPhase phase) const {
    return per_phase[static_cast<std::size_t>(phase)];
  }
};

/// Replays one trace. Predictions are trimmed to the top `k` tiles.
Result<AccuracyReport> ReplayTrace(TilePredictor* predictor,
                                   const core::Trace& trace, std::size_t k);

/// Replays many traces (one session each) and merges the reports.
Result<AccuracyReport> ReplayTraces(TilePredictor* predictor,
                                    const std::vector<core::Trace>& traces,
                                    std::size_t k);

}  // namespace fc::eval

#endif  // FORECACHE_EVAL_REPLAY_H_
