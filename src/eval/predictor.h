// TilePredictor: the uniform interface the evaluation harness replays
// traces against, plus a factory that assembles every model configuration
// evaluated in the paper (Momentum, Hotspot, Markov-n AB, per-signature SB,
// and the full two-level engines).

#ifndef FORECACHE_EVAL_PREDICTOR_H_
#define FORECACHE_EVAL_PREDICTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/baseline_recommenders.h"
#include "core/phase_classifier.h"
#include "core/prediction_engine.h"
#include "core/sb_recommender.h"
#include "sim/study.h"

namespace fc::eval {

/// Stateful per-session predictor: feed requests, get ranked prefetch lists.
class TilePredictor {
 public:
  virtual ~TilePredictor() = default;
  virtual std::string_view name() const = 0;
  virtual void StartSession() = 0;
  /// Receives the full trace record so oracle-phase ablations can read the
  /// ground-truth label; ordinary predictors use only record.request.
  virtual Result<core::RankedTiles> OnRequest(const core::TraceRecord& record) = 0;
};

/// Model configurations evaluated in section 5.
struct PredictorConfig {
  enum class Kind {
    kMomentum,      ///< Baseline (section 5.2.3).
    kHotspot,       ///< Baseline (section 5.2.3).
    kAb,            ///< Markov-n AB recommender alone.
    kSb,            ///< SB recommender alone (one or more signatures).
    kHybridEngine,  ///< Final two-level engine (section 5.4.3 allocation).
    kPhaseEngine,   ///< Two-level engine with the section 4.4 allocation.
  };
  Kind kind = Kind::kHybridEngine;

  std::size_t ab_history_length = 3;  ///< The paper's Markov3 default.

  /// SB signature weights; empty = {SIFT: 1} (the paper's best).
  std::map<vision::SignatureKind, double> sb_weights;

  std::size_t k = 5;               ///< Prefetch budget (engine kinds).
  std::size_t history_length = 8;  ///< Session history n.

  /// Phase source for engine kinds: SVM (default), ground truth (oracle
  /// ablation), or a fixed phase (classifier disabled).
  enum class PhaseSource { kSvm, kOracle, kFixed } phase_source = PhaseSource::kSvm;
  core::AnalysisPhase fixed_phase = core::AnalysisPhase::kNavigation;

  core::PhaseClassifierOptions classifier;

  std::string DisplayName() const;
};

/// Builds fresh, trained predictors for one LOOCV fold.
class PredictorFactory {
 public:
  /// `pyramid` and `toolbox` must outlive all built predictors.
  PredictorFactory(const tiles::TilePyramid* pyramid,
                   const vision::SignatureToolbox* toolbox);

  /// Trains every component the configuration needs on `training_traces`.
  Result<std::unique_ptr<TilePredictor>> Build(
      const PredictorConfig& config,
      const std::vector<core::Trace>& training_traces) const;

 private:
  const tiles::TilePyramid* pyramid_;
  const vision::SignatureToolbox* toolbox_;
};

}  // namespace fc::eval

#endif  // FORECACHE_EVAL_PREDICTOR_H_
