#include "eval/replay.h"

#include <algorithm>

namespace fc::eval {

void AccuracyReport::Merge(const AccuracyReport& other) {
  overall.Merge(other.overall);
  for (std::size_t i = 0; i < per_phase.size(); ++i) {
    per_phase[i].Merge(other.per_phase[i]);
  }
}

Result<AccuracyReport> ReplayTrace(TilePredictor* predictor,
                                   const core::Trace& trace, std::size_t k) {
  AccuracyReport report;
  predictor->StartSession();
  for (std::size_t i = 0; i + 1 < trace.records.size(); ++i) {
    FC_ASSIGN_OR_RETURN(auto ranked, predictor->OnRequest(trace.records[i]));
    const auto& next = trace.records[i + 1];
    std::size_t depth = std::min(k, ranked.size());
    bool hit = false;
    for (std::size_t j = 0; j < depth; ++j) {
      if (ranked[j] == next.request.tile) {
        hit = true;
        break;
      }
    }
    ++report.overall.total;
    auto& phase = report.per_phase[static_cast<std::size_t>(next.phase)];
    ++phase.total;
    if (hit) {
      ++report.overall.hits;
      ++phase.hits;
    }
  }
  return report;
}

Result<AccuracyReport> ReplayTraces(TilePredictor* predictor,
                                    const std::vector<core::Trace>& traces,
                                    std::size_t k) {
  AccuracyReport merged;
  for (const auto& trace : traces) {
    FC_ASSIGN_OR_RETURN(auto report, ReplayTrace(predictor, trace, k));
    merged.Merge(report);
  }
  return merged;
}

}  // namespace fc::eval
