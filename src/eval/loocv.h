// Leave-one-out cross-validation over study users (paper section 5.4):
// for each of the 18 users, train on the other 17 and test on the held-out
// user's traces.

#ifndef FORECACHE_EVAL_LOOCV_H_
#define FORECACHE_EVAL_LOOCV_H_

#include <map>
#include <string>

#include "eval/replay.h"
#include "sim/study.h"

namespace fc::eval {

struct LoocvResult {
  AccuracyReport merged;                          ///< Across all users.
  std::map<std::string, AccuracyReport> per_user;  ///< Per held-out user.
};

/// Runs the full LOOCV accuracy protocol for one model configuration at one
/// fetch budget k.
Result<LoocvResult> RunLoocvAccuracy(const sim::Study& study,
                                     const PredictorConfig& config, std::size_t k);

/// Phase-classifier LOOCV (section 5.4.1): trains the SVM per fold and
/// reports label accuracy per held-out user plus the overall mean.
struct ClassifierLoocvResult {
  double overall_accuracy = 0.0;                ///< Mean across users.
  std::map<std::string, double> per_user;
  double best_user_accuracy = 0.0;
};
Result<ClassifierLoocvResult> RunLoocvClassifier(
    const sim::Study& study, const core::PhaseClassifierOptions& options);

}  // namespace fc::eval

#endif  // FORECACHE_EVAL_LOOCV_H_
