#include "eval/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace fc::eval {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace fc::eval
