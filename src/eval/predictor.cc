#include "eval/predictor.h"

#include <algorithm>

#include "common/string_utils.h"

namespace fc::eval {

std::string PredictorConfig::DisplayName() const {
  std::string base;
  switch (kind) {
    case Kind::kMomentum: base = "momentum"; break;
    case Kind::kHotspot: base = "hotspot"; break;
    case Kind::kAb: base = StrFormat("markov%zu", ab_history_length); break;
    case Kind::kSb: {
      if (sb_weights.empty()) {
        base = "sb-sift";
      } else {
        base = "sb";
        for (const auto& [kind_, _] : sb_weights) {
          base += "-";
          base += vision::SignatureKindToString(kind_);
        }
      }
      break;
    }
    case Kind::kHybridEngine: base = "hybrid"; break;
    case Kind::kPhaseEngine: base = "phase-engine"; break;
  }
  if (kind == Kind::kHybridEngine || kind == Kind::kPhaseEngine) {
    if (phase_source == PhaseSource::kOracle) {
      base += "+oracle";
    } else if (phase_source == PhaseSource::kFixed) {
      base += StrFormat("+fixed(%s)",
                        std::string(core::AnalysisPhaseToString(fixed_phase)).c_str());
    }
  }
  return base;
}

namespace {

// Replays a single recommender, maintaining history and ROI state itself.
class SingleModelPredictor : public TilePredictor {
 public:
  SingleModelPredictor(std::string name, std::unique_ptr<core::Recommender> model,
                       const tiles::PyramidSpec* spec, std::size_t history_length)
      : name_(std::move(name)),
        model_(std::move(model)),
        spec_(spec),
        history_(history_length) {}

  std::string_view name() const override { return name_; }

  void StartSession() override {
    history_.Clear();
    roi_.Reset();
  }

  Result<core::RankedTiles> OnRequest(const core::TraceRecord& record) override {
    history_.Add(record.request);
    roi_.Update(record.request);
    core::PredictionContext ctx;
    ctx.request = record.request;
    ctx.history = &history_;
    ctx.spec = spec_;
    // Committed ROI plus the tiles visited since the current zoom-in —
    // mirrors PredictionEngine's reference-set construction.
    ctx.roi = roi_.roi();
    for (const auto& key : roi_.temp_roi()) {
      if (std::find(ctx.roi.begin(), ctx.roi.end(), key) == ctx.roi.end()) {
        ctx.roi.push_back(key);
      }
    }
    ctx.candidates = core::CandidateTiles(record.request.tile, *spec_);
    return model_->Recommend(ctx);
  }

 private:
  std::string name_;
  std::unique_ptr<core::Recommender> model_;
  const tiles::PyramidSpec* spec_;
  core::SessionHistory history_;
  core::RoiTracker roi_;
};

// Replays a full two-level engine (owning all of its components).
class EnginePredictor : public TilePredictor {
 public:
  EnginePredictor(std::string name, const tiles::PyramidSpec* spec,
                  std::unique_ptr<core::PhaseClassifier> classifier,
                  std::unique_ptr<core::Recommender> ab,
                  std::unique_ptr<core::Recommender> sb,
                  std::unique_ptr<core::AllocationStrategy> strategy,
                  core::PredictionEngineOptions options,
                  PredictorConfig::PhaseSource phase_source,
                  core::AnalysisPhase fixed_phase)
      : name_(std::move(name)),
        classifier_(std::move(classifier)),
        ab_(std::move(ab)),
        sb_(std::move(sb)),
        strategy_(std::move(strategy)),
        phase_source_(phase_source),
        engine_(spec,
                phase_source == PredictorConfig::PhaseSource::kSvm
                    ? classifier_.get()
                    : nullptr,
                ab_.get(), sb_.get(), strategy_.get(), options) {
    engine_.fallback_phase = fixed_phase;
  }

  std::string_view name() const override { return name_; }

  void StartSession() override { engine_.Reset(); }

  Result<core::RankedTiles> OnRequest(const core::TraceRecord& record) override {
    if (phase_source_ == PredictorConfig::PhaseSource::kOracle) {
      engine_.fallback_phase = record.phase;
    }
    FC_ASSIGN_OR_RETURN(auto prediction, engine_.OnRequest(record.request));
    return prediction.tiles;
  }

 private:
  std::string name_;
  std::unique_ptr<core::PhaseClassifier> classifier_;
  std::unique_ptr<core::Recommender> ab_;
  std::unique_ptr<core::Recommender> sb_;
  std::unique_ptr<core::AllocationStrategy> strategy_;
  PredictorConfig::PhaseSource phase_source_;
  core::PredictionEngine engine_;
};

}  // namespace

PredictorFactory::PredictorFactory(const tiles::TilePyramid* pyramid,
                                   const vision::SignatureToolbox* toolbox)
    : pyramid_(pyramid), toolbox_(toolbox) {}

Result<std::unique_ptr<TilePredictor>> PredictorFactory::Build(
    const PredictorConfig& config,
    const std::vector<core::Trace>& training_traces) const {
  const auto* spec = &pyramid_->spec();
  std::string name = config.DisplayName();

  auto make_ab = [&]() -> Result<std::unique_ptr<core::Recommender>> {
    core::AbRecommenderOptions ab_opts;
    ab_opts.history_length = config.ab_history_length;
    FC_ASSIGN_OR_RETURN(auto ab, core::AbRecommender::Make(ab_opts));
    auto owned = std::make_unique<core::AbRecommender>(std::move(ab));
    FC_RETURN_IF_ERROR(owned->Train(training_traces));
    return std::unique_ptr<core::Recommender>(std::move(owned));
  };
  auto make_sb = [&]() -> std::unique_ptr<core::Recommender> {
    core::SbRecommenderOptions sb_opts;
    sb_opts.signature_weights = config.sb_weights;
    return std::make_unique<core::SbRecommender>(&pyramid_->metadata(), toolbox_,
                                                 sb_opts);
  };

  switch (config.kind) {
    case PredictorConfig::Kind::kMomentum: {
      return std::unique_ptr<TilePredictor>(std::make_unique<SingleModelPredictor>(
          name, std::make_unique<core::MomentumRecommender>(), spec,
          config.history_length));
    }
    case PredictorConfig::Kind::kHotspot: {
      auto hotspot = std::make_unique<core::HotspotRecommender>();
      FC_RETURN_IF_ERROR(hotspot->Train(training_traces));
      return std::unique_ptr<TilePredictor>(std::make_unique<SingleModelPredictor>(
          name, std::move(hotspot), spec, config.history_length));
    }
    case PredictorConfig::Kind::kAb: {
      FC_ASSIGN_OR_RETURN(auto ab, make_ab());
      return std::unique_ptr<TilePredictor>(std::make_unique<SingleModelPredictor>(
          name, std::move(ab), spec, config.history_length));
    }
    case PredictorConfig::Kind::kSb: {
      return std::unique_ptr<TilePredictor>(std::make_unique<SingleModelPredictor>(
          name, make_sb(), spec, config.history_length));
    }
    case PredictorConfig::Kind::kHybridEngine:
    case PredictorConfig::Kind::kPhaseEngine: {
      std::unique_ptr<core::PhaseClassifier> classifier;
      if (config.phase_source == PredictorConfig::PhaseSource::kSvm) {
        FC_ASSIGN_OR_RETURN(
            auto trained,
            core::PhaseClassifier::Train(training_traces, config.classifier));
        classifier = std::make_unique<core::PhaseClassifier>(std::move(trained));
      }
      FC_ASSIGN_OR_RETURN(auto ab, make_ab());
      auto sb = make_sb();
      std::unique_ptr<core::AllocationStrategy> strategy;
      if (config.kind == PredictorConfig::Kind::kHybridEngine) {
        strategy = std::make_unique<core::HybridAllocationStrategy>();
      } else {
        strategy = std::make_unique<core::PhaseAllocationStrategy>();
      }
      core::PredictionEngineOptions engine_opts;
      engine_opts.prefetch_k = config.k;
      engine_opts.history_length = config.history_length;
      return std::unique_ptr<TilePredictor>(std::make_unique<EnginePredictor>(
          name, spec, std::move(classifier), std::move(ab), std::move(sb),
          std::move(strategy), engine_opts, config.phase_source,
          config.fixed_phase));
    }
  }
  return Status::InvalidArgument("unknown predictor kind");
}

}  // namespace fc::eval
