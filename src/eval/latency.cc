#include "eval/latency.h"

#include <algorithm>

#include "common/sim_clock.h"
#include "core/cache_manager.h"
#include "storage/tile_store.h"

namespace fc::eval {

void LatencyReport::Merge(const LatencyReport& other) {
  double total = average_ms * static_cast<double>(requests) +
                 other.average_ms * static_cast<double>(other.requests);
  double hits = hit_rate * static_cast<double>(requests) +
                other.hit_rate * static_cast<double>(other.requests);
  requests += other.requests;
  average_ms = requests == 0 ? 0.0 : total / static_cast<double>(requests);
  hit_rate = requests == 0 ? 0.0 : hits / static_cast<double>(requests);
  per_request_ms.insert(per_request_ms.end(), other.per_request_ms.begin(),
                        other.per_request_ms.end());
}

Result<LatencyReport> ReplayLatencyForUser(const sim::Study& study,
                                           const LatencyReplayOptions& options,
                                           const std::string& user_id) {
  // Per-fold components, trained on the other users' traces.
  std::unique_ptr<TilePredictor> predictor;
  if (options.prefetching_enabled) {
    PredictorFactory factory(study.dataset.pyramid.get(),
                             study.dataset.toolbox.get());
    FC_ASSIGN_OR_RETURN(
        predictor,
        factory.Build(options.predictor, study.TracesExcludingUser(user_id)));
  }

  SimClock clock;
  array::QueryCostModel miss_model(options.costs, options.seed);
  array::QueryCostModel hit_model(options.costs, options.seed + 1);
  storage::SimulatedDbmsStore store(study.dataset.pyramid, miss_model, &clock);

  // Region budgets are bytes; size them in units of this dataset's tiles so
  // the replay matches the paper's tile-count semantics exactly.
  const std::size_t tile_bytes = study.dataset.pyramid->NominalTileBytes();
  core::CacheManagerOptions cache_opts;
  cache_opts.history_bytes = options.history_tiles * tile_bytes;
  cache_opts.prefetch_bytes = options.predictor.k * tile_bytes;
  core::CacheManager cache(&store, cache_opts);

  LatencyReport report;
  std::size_t hits = 0;
  for (const auto& trace : study.traces) {
    if (trace.user_id != user_id) continue;
    cache.Clear();
    if (predictor) predictor->StartSession();
    for (const auto& record : trace.records) {
      // Serve the request, measuring user-perceived latency.
      std::int64_t t0 = clock.NowMicros();
      FC_ASSIGN_OR_RETURN(auto outcome, cache.Request(record.request.tile));
      if (outcome.cache_hit) {
        clock.AdvanceMillis(hit_model.CacheHitMillis());
        ++hits;
      }
      report.per_request_ms.push_back(
          static_cast<double>(clock.NowMicros() - t0) / 1000.0);
      ++report.requests;

      // Predict + prefetch during think time (not charged to the user).
      if (predictor) {
        FC_ASSIGN_OR_RETURN(auto ranked, predictor->OnRequest(record));
        if (ranked.size() > options.predictor.k) {
          ranked.resize(options.predictor.k);
        }
        FC_RETURN_IF_ERROR(cache.Prefetch(ranked));
      }
    }
  }

  double total = 0.0;
  for (double ms : report.per_request_ms) total += ms;
  report.average_ms =
      report.requests == 0 ? 0.0 : total / static_cast<double>(report.requests);
  report.hit_rate = report.requests == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(report.requests);
  return report;
}

Result<LatencyReport> ReplayLatencyLoocv(const sim::Study& study,
                                         const LatencyReplayOptions& options) {
  LatencyReport merged;
  for (const auto& user : study.UserIds()) {
    FC_ASSIGN_OR_RETURN(auto report, ReplayLatencyForUser(study, options, user));
    merged.Merge(report);
  }
  return merged;
}

}  // namespace fc::eval
