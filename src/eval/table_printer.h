// Fixed-width table output for the benchmark harnesses.

#ifndef FORECACHE_EVAL_TABLE_PRINTER_H_
#define FORECACHE_EVAL_TABLE_PRINTER_H_

#include <iostream>
#include <string>
#include <vector>

namespace fc::eval {

/// Accumulates rows and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 3);

  /// Writes the table to `os` with a separator under the header.
  void Print(std::ostream& os = std::cout) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fc::eval

#endif  // FORECACHE_EVAL_TABLE_PRINTER_H_
