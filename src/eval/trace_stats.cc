#include "eval/trace_stats.h"

#include <algorithm>
#include <set>

namespace fc::eval {

MoveDistribution ComputeMoveDistribution(const std::vector<core::Trace>& traces) {
  MoveDistribution dist;
  std::size_t pans = 0;
  std::size_t ins = 0;
  std::size_t outs = 0;
  for (const auto& trace : traces) {
    for (const auto& rec : trace.records) {
      if (!rec.request.move.has_value()) continue;
      switch (core::ClassOf(*rec.request.move)) {
        case core::MoveClass::kPan: ++pans; break;
        case core::MoveClass::kZoomIn: ++ins; break;
        case core::MoveClass::kZoomOut: ++outs; break;
      }
    }
  }
  dist.total_moves = pans + ins + outs;
  if (dist.total_moves > 0) {
    auto n = static_cast<double>(dist.total_moves);
    dist.pan = static_cast<double>(pans) / n;
    dist.zoom_in = static_cast<double>(ins) / n;
    dist.zoom_out = static_cast<double>(outs) / n;
  }
  return dist;
}

std::array<double, core::kNumPhases> ComputePhaseDistribution(
    const std::vector<core::Trace>& traces) {
  std::array<std::size_t, core::kNumPhases> counts{};
  std::size_t total = 0;
  for (const auto& trace : traces) {
    for (const auto& rec : trace.records) {
      ++counts[static_cast<std::size_t>(rec.phase)];
      ++total;
    }
  }
  std::array<double, core::kNumPhases> dist{};
  if (total > 0) {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      dist[i] = static_cast<double>(counts[i]) / static_cast<double>(total);
    }
  }
  return dist;
}

std::map<std::string, MoveDistribution> ComputePerUserMoveDistributions(
    const std::vector<core::Trace>& traces) {
  std::map<std::string, std::vector<core::Trace>> by_user;
  for (const auto& trace : traces) by_user[trace.user_id].push_back(trace);
  std::map<std::string, MoveDistribution> out;
  for (const auto& [user, user_traces] : by_user) {
    out[user] = ComputeMoveDistribution(user_traces);
  }
  return out;
}

std::vector<int> ZoomLevelSeries(const core::Trace& trace) {
  std::vector<int> levels;
  levels.reserve(trace.records.size());
  for (const auto& rec : trace.records) levels.push_back(rec.request.tile.level);
  return levels;
}

double AverageRequestsPerTrace(const std::vector<core::Trace>& traces) {
  if (traces.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& t : traces) total += t.records.size();
  return static_cast<double>(total) / static_cast<double>(traces.size());
}

bool ExhibitsSawtooth(const core::Trace& trace, int shallow, int deep,
                      int min_cycles) {
  // Count shallow->deep->shallow alternations.
  auto levels = ZoomLevelSeries(trace);
  int cycles = 0;
  bool in_deep = false;
  bool seen_shallow = false;
  for (int level : levels) {
    if (level <= shallow) {
      if (in_deep && seen_shallow) ++cycles;  // completed deep excursion
      in_deep = false;
      seen_shallow = true;
    } else if (level >= deep) {
      in_deep = true;
    }
  }
  if (in_deep && seen_shallow) ++cycles;  // trace may end while deep
  return cycles >= min_cycles;
}

SawtoothSummary SummarizeSawtooth(const std::vector<core::Trace>& traces,
                                  int shallow, int deep) {
  SawtoothSummary summary;
  std::map<std::string, std::pair<int, int>> user_counts;  // sawtooth, total
  for (const auto& trace : traces) {
    auto& [saw, total] = user_counts[trace.user_id];
    ++total;
    if (ExhibitsSawtooth(trace, shallow, deep)) ++saw;

    for (const auto& rec : trace.records) {
      ++summary.total_requests;
      if (!rec.request.move.has_value()) continue;
      auto cls = core::ClassOf(*rec.request.move);
      // Moves the three-phase model does not anticipate for the label.
      bool violation =
          (rec.phase == core::AnalysisPhase::kNavigation &&
           cls == core::MoveClass::kPan) ||
          (rec.phase == core::AnalysisPhase::kSensemaking &&
           cls != core::MoveClass::kPan);
      if (violation) ++summary.model_violations;
    }
  }
  summary.users_total = static_cast<int>(user_counts.size());
  for (const auto& [user, counts] : user_counts) {
    (void)user;
    if (counts.first == counts.second && counts.second > 0) {
      ++summary.users_all_tasks;
    }
    if (counts.first >= 2) ++summary.users_two_plus_tasks;
  }
  return summary;
}

}  // namespace fc::eval
