// Descriptive statistics over study traces — the ingredients of the paper's
// Figures 8 and 9 and the section 5.3.5 behavioral claims.

#ifndef FORECACHE_EVAL_TRACE_STATS_H_
#define FORECACHE_EVAL_TRACE_STATS_H_

#include <array>
#include <map>
#include <string>
#include <vector>

#include "core/request.h"

namespace fc::eval {

/// Fractions of pan / zoom-in / zoom-out moves (Figure 8a, 8c-e).
struct MoveDistribution {
  double pan = 0.0;
  double zoom_in = 0.0;
  double zoom_out = 0.0;
  std::size_t total_moves = 0;
};

MoveDistribution ComputeMoveDistribution(const std::vector<core::Trace>& traces);

/// Fractions of requests per analysis phase (Figure 8b).
std::array<double, core::kNumPhases> ComputePhaseDistribution(
    const std::vector<core::Trace>& traces);

/// Per-user move distributions for one task (Figure 8c-e).
std::map<std::string, MoveDistribution> ComputePerUserMoveDistributions(
    const std::vector<core::Trace>& traces);

/// The zoom level of every request in order (Figure 9's series).
std::vector<int> ZoomLevelSeries(const core::Trace& trace);

/// Mean number of requests per trace.
double AverageRequestsPerTrace(const std::vector<core::Trace>& traces);

/// Section 5.3.5's alternation claim: a trace "exhibits the exploration
/// behavior" when the zoom-level series alternates between a shallow band
/// (level <= shallow) and a deep band (level >= deep) at least `min_cycles`
/// times.
bool ExhibitsSawtooth(const core::Trace& trace, int shallow, int deep,
                      int min_cycles = 2);

struct SawtoothSummary {
  int users_total = 0;
  int users_all_tasks = 0;      ///< Sawtooth in every task (paper: 13/18).
  int users_two_plus_tasks = 0; ///< Sawtooth in >= 2 tasks (paper: 16/18).
  std::size_t total_requests = 0;
  /// Requests whose move is inconsistent with the labeled phase (pans during
  /// Navigation, zooms during Sensemaking) — the analogue of the paper's
  /// "57 out of 1390 requests not described by our exploration model".
  std::size_t model_violations = 0;
};

SawtoothSummary SummarizeSawtooth(const std::vector<core::Trace>& traces,
                                  int shallow, int deep);

}  // namespace fc::eval

#endif  // FORECACHE_EVAL_TRACE_STATS_H_
