// Latency replay (paper section 5.5): drive study traces through the full
// middleware (cache manager + prediction engine + simulated DBMS) on the
// virtual clock and measure per-request response times.

#ifndef FORECACHE_EVAL_LATENCY_H_
#define FORECACHE_EVAL_LATENCY_H_

#include <optional>
#include <vector>

#include "array/cost_model.h"
#include "eval/predictor.h"
#include "sim/study.h"

namespace fc::eval {

struct LatencyReplayOptions {
  /// Model under test. Ignored when `prefetching_enabled` is false.
  PredictorConfig predictor;

  bool prefetching_enabled = true;

  /// History-LRU size in nominal tiles (converted to the cache manager's
  /// byte budget using the dataset's tile size). The paper's latency
  /// measurements reflect prefetch hits only (Figure 12's tight linearity),
  /// so the default keeps just the tile being viewed; raise it to study
  /// revisit-caching effects.
  std::size_t history_tiles = 1;

  array::CostModelOptions costs = array::CalibratedPaperCosts();
  std::uint64_t seed = 97;
};

struct LatencyReport {
  double average_ms = 0.0;
  double hit_rate = 0.0;
  std::size_t requests = 0;
  std::vector<double> per_request_ms;

  void Merge(const LatencyReport& other);
};

/// Replays every trace of one held-out user with components trained on the
/// remaining users (LOOCV fold), measuring simulated latency.
Result<LatencyReport> ReplayLatencyForUser(const sim::Study& study,
                                           const LatencyReplayOptions& options,
                                           const std::string& user_id);

/// Full LOOCV latency sweep: merges every user's fold.
Result<LatencyReport> ReplayLatencyLoocv(const sim::Study& study,
                                         const LatencyReplayOptions& options);

}  // namespace fc::eval

#endif  // FORECACHE_EVAL_LATENCY_H_
