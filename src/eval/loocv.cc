#include "eval/loocv.h"

#include <algorithm>

namespace fc::eval {

Result<LoocvResult> RunLoocvAccuracy(const sim::Study& study,
                                     const PredictorConfig& config,
                                     std::size_t k) {
  PredictorFactory factory(study.dataset.pyramid.get(),
                           study.dataset.toolbox.get());
  LoocvResult result;
  for (const auto& user : study.UserIds()) {
    auto training = study.TracesExcludingUser(user);
    FC_ASSIGN_OR_RETURN(auto predictor, factory.Build(config, training));

    std::vector<core::Trace> test;
    for (const auto& t : study.traces) {
      if (t.user_id == user) test.push_back(t);
    }
    FC_ASSIGN_OR_RETURN(auto report, ReplayTraces(predictor.get(), test, k));
    result.per_user[user] = report;
    result.merged.Merge(report);
  }
  return result;
}

Result<ClassifierLoocvResult> RunLoocvClassifier(
    const sim::Study& study, const core::PhaseClassifierOptions& options) {
  ClassifierLoocvResult result;
  double sum = 0.0;
  std::size_t folds = 0;
  for (const auto& user : study.UserIds()) {
    auto training = study.TracesExcludingUser(user);
    FC_ASSIGN_OR_RETURN(auto classifier,
                        core::PhaseClassifier::Train(training, options));
    std::vector<core::Trace> test;
    for (const auto& t : study.traces) {
      if (t.user_id == user) test.push_back(t);
    }
    double accuracy = classifier.EvaluateAccuracy(test);
    result.per_user[user] = accuracy;
    result.best_user_accuracy = std::max(result.best_user_accuracy, accuracy);
    sum += accuracy;
    ++folds;
  }
  result.overall_accuracy = folds == 0 ? 0.0 : sum / static_cast<double>(folds);
  return result;
}

}  // namespace fc::eval
