// Signature-Based (SB) recommender: ranks candidate tiles by visual
// similarity to the user's most recent ROI (paper section 4.3.3,
// Algorithm 3).

#ifndef FORECACHE_CORE_SB_RECOMMENDER_H_
#define FORECACHE_CORE_SB_RECOMMENDER_H_

#include <map>
#include <vector>

#include "core/recommender.h"
#include "tiles/metadata.h"
#include "vision/signature.h"

namespace fc::core {

struct SbRecommenderOptions {
  /// Signatures consulted and their l2 weights (paper: equal by default).
  /// Empty map = SIFT only (the paper's best signature, section 5.4.2).
  std::map<vision::SignatureKind, double> signature_weights;
};

class SbRecommender : public Recommender {
 public:
  /// `metadata` and `toolbox` must outlive the recommender. The toolbox
  /// provides each signature's distance function.
  SbRecommender(const tiles::TileMetadataStore* metadata,
                const vision::SignatureToolbox* toolbox,
                SbRecommenderOptions options = {});

  std::string_view name() const override { return "sb"; }

  /// Algorithm 3 over ctx.candidates and ctx.roi. When the ROI is empty the
  /// recommender falls back to the most recent requested tiles (the user's
  /// history is the reference set, cf. paper Figure 6b).
  Result<RankedTiles> Recommend(const PredictionContext& ctx) const override;

  /// The combined distance of one candidate to one reference tile
  /// (Algorithm 3 lines 8-13, after per-signature normalization by
  /// `per_signature_max`). Exposed for tests.
  Result<double> PairDistance(const tiles::TileKey& candidate,
                              const tiles::TileKey& reference,
                              const std::map<vision::SignatureKind, double>&
                                  per_signature_max) const;

  const SbRecommenderOptions& options() const { return options_; }

 private:
  // Signature distance with the 2^(manhattan-1) physical penalty
  // (Algorithm 3 line 8).
  Result<double> PenalizedSignatureDistance(vision::SignatureKind kind,
                                            const tiles::TileKey& a,
                                            const tiles::TileKey& b) const;

  const tiles::TileMetadataStore* metadata_;
  const vision::SignatureToolbox* toolbox_;
  SbRecommenderOptions options_;
  std::vector<vision::SignatureKind> kinds_;  // resolved from options
  std::vector<double> weights_;
};

}  // namespace fc::core

#endif  // FORECACHE_CORE_SB_RECOMMENDER_H_
