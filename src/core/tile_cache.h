// Main-memory middleware tile cache (paper section 3): an LRU region for
// the user's recently requested tiles plus a prefetch region refreshed from
// the prediction engine's ranked list after every request.
//
// Regions are budgeted in BYTES, not tiles: memory is the binding resource
// when one process serves many sessions, and tile payloads vary (edge tiles,
// attribute counts). A region sized for n nominal tiles is budgeted as
// n * width * height * num_attrs * sizeof(double).

#ifndef FORECACHE_CORE_TILE_CACHE_H_
#define FORECACHE_CORE_TILE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "tiles/tile.h"
#include "tiles/tile_key.h"

namespace fc::core {

/// Plain LRU cache of tile payloads with a fixed byte budget.
class LruTileCache {
 public:
  /// `max_bytes` bounds the summed Tile::SizeBytes of resident tiles. A
  /// single tile larger than the whole budget is still admitted (alone), so
  /// the cache always makes progress.
  explicit LruTileCache(std::size_t max_bytes);

  /// Inserts/refreshes; evicts least-recently-used tiles until the budget
  /// holds.
  void Put(const tiles::TileKey& key, tiles::TilePtr tile);

  /// Returns the tile and promotes it to most-recently-used; NotFound miss.
  Result<tiles::TilePtr> Get(const tiles::TileKey& key);

  /// Lookup without LRU promotion or stats; null when absent.
  tiles::TilePtr Peek(const tiles::TileKey& key) const;

  /// Lookup without LRU promotion or stats.
  bool Contains(const tiles::TileKey& key) const;

  void Erase(const tiles::TileKey& key);
  void Clear();

  std::size_t size() const { return map_.size(); }
  std::size_t max_bytes() const { return max_bytes_; }
  /// Summed payload bytes of resident tiles.
  std::size_t bytes_resident() const { return bytes_resident_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double HitRate() const;

  /// Keys currently cached, most-recently-used first.
  std::vector<tiles::TileKey> KeysByRecency() const;

 private:
  struct Entry {
    tiles::TileKey key;
    tiles::TilePtr tile;
    std::size_t bytes = 0;
  };

  std::size_t max_bytes_;
  std::size_t bytes_resident_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<tiles::TileKey, std::list<Entry>::iterator, tiles::TileKeyHash>
      map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace fc::core

#endif  // FORECACHE_CORE_TILE_CACHE_H_
