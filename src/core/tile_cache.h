// Main-memory middleware tile cache (paper section 3): an LRU region for
// the user's recently requested tiles plus a prefetch region refreshed from
// the prediction engine's ranked list after every request.

#ifndef FORECACHE_CORE_TILE_CACHE_H_
#define FORECACHE_CORE_TILE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "tiles/tile.h"
#include "tiles/tile_key.h"

namespace fc::core {

/// Plain LRU cache of tile payloads with a fixed tile-count capacity.
class LruTileCache {
 public:
  explicit LruTileCache(std::size_t capacity);

  /// Inserts/refreshes; evicts the least-recently-used tile when full.
  void Put(const tiles::TileKey& key, tiles::TilePtr tile);

  /// Returns the tile and promotes it to most-recently-used; NotFound miss.
  Result<tiles::TilePtr> Get(const tiles::TileKey& key);

  /// Lookup without LRU promotion or stats.
  bool Contains(const tiles::TileKey& key) const;

  void Erase(const tiles::TileKey& key);
  void Clear();

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double HitRate() const;

  /// Keys currently cached, most-recently-used first.
  std::vector<tiles::TileKey> KeysByRecency() const;

 private:
  struct Entry {
    tiles::TileKey key;
    tiles::TilePtr tile;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<tiles::TileKey, std::list<Entry>::iterator, tiles::TileKeyHash>
      map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace fc::core

#endif  // FORECACHE_CORE_TILE_CACHE_H_
