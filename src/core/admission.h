// Admission control for the shared tile cache.
//
// PR 2 made every cache byte-budgeted, but budgets alone cannot stop one
// scan-heavy session from flushing every other session's hot set: each
// fetched tile was admitted unconditionally, so a sequential scan turns the
// whole L1 tier over once per pass. The fix is the classic TinyLFU shape
// (Einziger et al.): a compact 4-bit count-min sketch estimates how often
// each tile has been looked up recently, and a cold candidate is only
// allowed to displace resident tiles that are even colder. Scan traffic
// (frequency 1) bounces off a warm working set (frequency >= 2) instead of
// evicting it.
//
// Periodic halving keeps the sketch's history recent: every `halve_every`
// recorded accesses all counters are divided by two, so a tile that was hot
// an hour ago decays instead of squatting on its admission priority forever.
//
// Thread-safety: none. The shared cache instantiates one policy per shard
// and calls it under that shard's mutex.

#ifndef FORECACHE_CORE_ADMISSION_H_
#define FORECACHE_CORE_ADMISSION_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace fc::core {

/// 4-bit count-min frequency sketch with periodic halving (the TinyLFU
/// "reset" operation). Estimates saturate at 15; halving divides every
/// counter by two so estimates track recent popularity, not all of history.
/// Not thread-safe: own one per shard and call it under that shard's lock.
class FrequencySketch {
 public:
  /// `counters`: 4-bit counters per row, rounded up to a power of two
  /// (minimum 16). Size the sketch at or above the number of tiles whose
  /// frequency matters (roughly the cacheable working set). `halve_every`:
  /// recorded accesses between halvings; 0 picks 8x `counters`.
  explicit FrequencySketch(std::size_t counters, std::uint64_t halve_every = 0);

  /// Records one access of `hash`, halving all counters first if the sample
  /// period is up.
  void Record(std::uint64_t hash);

  /// Estimated access count of `hash` in [0, 15] (min over rows; count-min
  /// only ever overestimates).
  std::uint32_t Estimate(std::uint64_t hash) const;

  /// Total accesses ever recorded (not reset by halving).
  std::uint64_t accesses() const { return total_accesses_; }
  /// Halvings performed so far.
  std::uint64_t halvings() const { return halvings_; }
  /// Counters per row after power-of-two rounding.
  std::size_t counters_per_row() const { return counters_; }
  /// Effective halving period (resolved from the 0 = auto default).
  std::uint64_t halve_every() const { return halve_every_; }

 private:
  static constexpr int kRows = 4;
  static constexpr std::uint32_t kMaxCount = 15;

  std::size_t IndexFor(int row, std::uint64_t hash) const;
  std::uint32_t CounterAt(int row, std::size_t index) const;
  void Halve();

  std::size_t counters_;       ///< Per row; power of two.
  std::uint64_t halve_every_;
  std::uint64_t window_accesses_ = 0;  ///< Since the last halving.
  std::uint64_t total_accesses_ = 0;
  std::uint64_t halvings_ = 0;
  /// kRows rows of counters_/16 words, 16 4-bit counters per word.
  std::vector<std::uint64_t> words_;
};

/// Decides whether a tile not yet resident may enter L1 when doing so would
/// displace resident tiles. Called by the shared cache under the owning
/// shard's lock; implementations need not be thread-safe. Contract: the
/// cache feeds every lookup to RecordAccess (hit or miss), then consults
/// ShouldAdmit only for offers that would actually displace residents.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  virtual std::string_view name() const = 0;

  /// Feeds one cache lookup of `key_hash` to the policy's popularity model.
  virtual void RecordAccess(std::uint64_t key_hash) = 0;

  /// True if inserting `candidate_hash` justifies evicting every tile in
  /// `victim_hashes` (the entries it would displace; empty when the shard
  /// has room, in which case implementations should admit).
  virtual bool ShouldAdmit(std::uint64_t candidate_hash,
                           const std::vector<std::uint64_t>& victim_hashes) = 0;
};

/// The pre-admission-control behavior: everything is admitted. Keeps the
/// recency-only (LRU/FIFO) semantics of PR 1/2 unchanged.
class AdmitAllPolicy final : public AdmissionPolicy {
 public:
  std::string_view name() const override { return "admit-all"; }
  void RecordAccess(std::uint64_t) override {}
  bool ShouldAdmit(std::uint64_t, const std::vector<std::uint64_t>&) override {
    return true;
  }
};

/// TinyLFU: admit a candidate only if its sketch frequency strictly exceeds
/// that of every tile it would displace. Ties reject — the incumbent keeps
/// its slot, which is exactly what makes a frequency-1 scan bounce off.
/// Not thread-safe (see AdmissionPolicy).
class TinyLfuAdmissionPolicy final : public AdmissionPolicy {
 public:
  /// Parameters are forwarded to FrequencySketch (see its constructor).
  explicit TinyLfuAdmissionPolicy(std::size_t sketch_counters,
                                  std::uint64_t halve_every = 0)
      : sketch_(sketch_counters, halve_every) {}

  std::string_view name() const override { return "tinylfu"; }
  void RecordAccess(std::uint64_t key_hash) override { sketch_.Record(key_hash); }
  bool ShouldAdmit(std::uint64_t candidate_hash,
                   const std::vector<std::uint64_t>& victim_hashes) override;

  /// The underlying frequency model (for tests and introspection).
  const FrequencySketch& sketch() const { return sketch_; }

 private:
  FrequencySketch sketch_;
};

enum class AdmissionPolicyKind { kAdmitAll, kTinyLfu };

struct AdmissionOptions {
  /// kAdmitAll preserves the historical always-admit behavior (the default,
  /// so recency-golden tests and single-session setups are unaffected).
  AdmissionPolicyKind policy = AdmissionPolicyKind::kAdmitAll;
  /// Sketch counters per cache shard (each shard sees only its own keys).
  std::size_t sketch_counters = 4096;
  /// Accesses between sketch halvings; 0 = 8x sketch_counters.
  std::uint64_t sketch_halve_every = 0;
  /// Prefetch fills whose prediction confidence reaches this bound bypass
  /// the frequency filter (quotas and byte budgets still apply): when the
  /// engine is near-certain of the user's next move, the tile must not be
  /// bounced for being new.
  double priority_confidence = 0.9;
};

/// Builds the policy one shard uses (never null).
std::unique_ptr<AdmissionPolicy> MakeAdmissionPolicy(
    const AdmissionOptions& options);

}  // namespace fc::core

#endif  // FORECACHE_CORE_ADMISSION_H_
