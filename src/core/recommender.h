// Recommendation-model interface (paper section 4.3.1).
//
// Given a request r, candidate tiles C, and session history H, a recommender
// orders C by how likely the user is to request each tile next. The
// prediction engine trims each model's list to its cache allocation.

#ifndef FORECACHE_CORE_RECOMMENDER_H_
#define FORECACHE_CORE_RECOMMENDER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/request.h"
#include "tiles/tile_key.h"

namespace fc::core {

/// Everything a recommender may consult for one prediction.
struct PredictionContext {
  TileRequest request;                    ///< The request r just served.
  const SessionHistory* history = nullptr;  ///< H (required).
  std::vector<tiles::TileKey> candidates;   ///< C, derived by the engine.
  std::vector<tiles::TileKey> roi;          ///< Most recent ROI (may be empty).
  const tiles::PyramidSpec* spec = nullptr; ///< Pyramid geometry (required).
};

/// A ranked prediction: tiles ordered most-likely-first.
using RankedTiles = std::vector<tiles::TileKey>;

class Recommender {
 public:
  virtual ~Recommender() = default;

  virtual std::string_view name() const = 0;

  /// Trains from recorded sessions; default no-op for stateless models.
  virtual Status Train(const std::vector<Trace>& traces);

  /// Orders ctx.candidates most-likely-first. Implementations must return a
  /// permutation of the candidate set (the engine relies on completeness to
  /// fill larger allocations).
  virtual Result<RankedTiles> Recommend(const PredictionContext& ctx) const = 0;
};

/// The candidate set C: all tiles at most `d` moves away from `from`
/// (paper section 4.3.1; default d = 1 gives the 9 one-move neighbors,
/// fewer at borders). Excludes `from` itself; deduplicated; deterministic
/// order (move-enum order at d=1, BFS order for d>1).
std::vector<tiles::TileKey> CandidateTiles(const tiles::TileKey& from,
                                           const tiles::PyramidSpec& spec, int d = 1);

}  // namespace fc::core

#endif  // FORECACHE_CORE_RECOMMENDER_H_
