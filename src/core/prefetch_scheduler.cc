#include "core/prefetch_scheduler.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace fc::core {

namespace {

/// Resolves the batcher's byte-cap conversion: an explicit knob wins, else
/// a single-attribute estimate from the store's pyramid geometry (the spec
/// does not know the attribute count; underestimating only loosens the
/// byte cap, never the tile cap).
storage::FetchBatcher MakeBatcher(const PrefetchSchedulerOptions& options,
                                  storage::TileStore* store) {
  std::size_t nominal = options.nominal_tile_bytes;
  if (nominal == 0 && store != nullptr) {
    const auto& spec = store->spec();
    nominal = static_cast<std::size_t>(spec.tile_width) *
              static_cast<std::size_t>(spec.tile_height) * sizeof(double);
  }
  return storage::FetchBatcher(options.batch, nominal);
}

}  // namespace

PrefetchScheduler::PrefetchScheduler(storage::TileStore* store,
                                     Executor* executor,
                                     SharedTileCache* shared,
                                     PrefetchSchedulerOptions options)
    : store_(store),
      executor_(executor),
      shared_(shared),
      options_(options),
      batcher_(MakeBatcher(options, store)) {
  FC_CHECK_MSG(store_ != nullptr, "PrefetchScheduler requires a tile store");
  if (options_.max_in_flight == 0) options_.max_in_flight = 1;
  options_.fairness_share = std::clamp(options_.fairness_share, 0.0, 1.0);
  if (options_.metrics != nullptr) {
    batch_size_hist_ = options_.metrics->GetHistogram("fc.prefetch.batch_size");
    queue_wait_us_ = options_.metrics->GetHistogram("fc.prefetch.queue_wait_us");
    fill_latency_us_ =
        options_.metrics->GetHistogram("fc.prefetch.fill_latency_us");
  }
}

PrefetchScheduler::~PrefetchScheduler() { Shutdown(); }

std::uint64_t PrefetchScheduler::RegisterSession(std::uint64_t session_id,
                                                 Delivery deliver) {
  std::lock_guard<std::mutex> lock(mu_);
  if (session_id == 0 || sessions_.count(session_id) > 0) {
    session_id = next_auto_id_++;
  }
  auto state = std::make_unique<SessionState>();
  state->deliver = std::move(deliver);
  sessions_.emplace(session_id, std::move(state));
  return session_id;
}

void PrefetchScheduler::SetSessionWeight(std::uint64_t session_id,
                                         double weight) {
  if (!(weight > 0.0)) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  it->second->weight = weight;
}

void PrefetchScheduler::RescoreLocked(const tiles::TileKey& key, Entry& entry) {
  double aggregate = 0.0;
  double deadline = kNoDeadline;
  for (const auto& sub : entry.subs) {
    aggregate += sub.confidence;
    deadline = std::min(deadline, sub.deadline_ms);
  }
  entry.priority = aggregate * static_cast<double>(entry.subs.size());
  entry.deadline_ms = deadline;
  entry.stamp = ++stamp_counter_;
  heap_.push(HeapNode{entry.priority, entry.stamp, key});
  // The deadline heap only ever holds finite-deadline entries: an entry
  // nobody is waiting on urgently is reachable through the utility
  // backfill alone. Both heaps share the stamp, so this one push
  // invalidates any older node for the key in BOTH.
  if (DeadlineEnabledLocked() && deadline < kNoDeadline) {
    deadline_heap_.push(DeadlineNode{deadline, entry.stamp, key});
  }
}

std::size_t PrefetchScheduler::PopDeadlinesLocked(
    std::size_t budget, double now_ms, std::vector<PoppedEntry>& batch) {
  // Round-start top utility score, for promotion accounting. A lazy peek:
  // stale nodes encountered on the way are discarded for good.
  double top_priority = 0.0;
  bool have_top = false;
  while (!heap_.empty()) {
    const HeapNode& node = heap_.top();
    auto eit = pending_.find(node.key);
    if (eit == pending_.end() || eit->second.stamp != node.stamp) {
      heap_.pop();
      continue;
    }
    top_priority = node.priority;
    have_top = true;
    break;
  }
  // Collect the earliest-deadline entries clearing the absolute utility
  // bar. With the adjacency window on, over-collect (CandidateCap) so the
  // batcher can complete a spatial run around the most urgent entry
  // instead of scattering the batch across the curve.
  const bool adjacency = batcher_.adjacency_enabled() && budget > 1;
  const std::size_t cap = adjacency ? batcher_.CandidateCap(budget) : budget;
  std::vector<DeadlineNode> nodes;
  std::vector<storage::BatchCandidate> candidates;
  while (candidates.size() < cap && !deadline_heap_.empty()) {
    DeadlineNode node = deadline_heap_.top();
    auto eit = pending_.find(node.key);
    if (eit == pending_.end() || eit->second.stamp != node.stamp) {
      deadline_heap_.pop();  // superseded score or retired entry
      continue;
    }
    if (eit->second.priority < options_.deadline_utility_bar) {
      // Below the bar: never deadline-promoted; the entry still drains
      // through the utility backfill. Dropping the node outright is safe —
      // any future rescore pushes a fresh one.
      deadline_heap_.pop();
      continue;
    }
    if (now_ms > node.deadline_ms) {
      // The window this entry was racing has closed: every subscriber
      // whose think time set the deadline has statistically moved on, so
      // spending the scarce EDF budget here would starve entries that can
      // still make their deadlines (under sustained overload the expired
      // backlog would otherwise consume the whole drain rate). Count the
      // miss and demote the entry to utility order, where supersession
      // sheds it if its subscribers really have moved on — and a session
      // still hovering on the tile re-arms a fresh deadline with its next
      // publish.
      deadline_heap_.pop();
      ++stats_.deadline_misses;
      continue;
    }
    deadline_heap_.pop();
    nodes.push_back(node);
    candidates.push_back(storage::BatchCandidate{node.key,
                                                 eit->second.priority});
  }
  // Candidate order is EDF, so SelectAdjacent's "index 0 always taken"
  // anchors the run on the most urgent entry and its index-order
  // tie-breaks prefer nearer deadlines.
  std::vector<std::size_t> chosen;
  if (adjacency && candidates.size() > 1) {
    chosen = batcher_.SelectAdjacent(candidates, budget);
  } else {
    for (std::size_t i = 0; i < std::min(budget, candidates.size()); ++i) {
      chosen.push_back(i);
    }
  }
  std::vector<bool> take(candidates.size(), false);
  for (std::size_t i : chosen) {
    take[i] = true;
    // Pulled forward past strictly nearer-deadline candidates to complete
    // a spatial run — same bounded-inversion accounting as the utility
    // path.
    if (i >= chosen.size()) ++stats_.adjacency_reorders;
  }
  std::size_t popped = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!take[i]) {
      // Unselected candidates return with their original stamps; their
      // pending_ entries (and enqueue_ms / deadline_ms) were never
      // touched, so lazy invalidation still recognizes them as current.
      deadline_heap_.push(nodes[i]);
      continue;
    }
    auto eit = pending_.find(nodes[i].key);
    if (have_top && eit->second.priority < top_priority) {
      ++stats_.deadline_promotions;
    }
    batch.push_back(PoppedEntry{nodes[i].key, std::move(eit->second.subs),
                                eit->second.enqueue_ms});
    pending_.erase(eit);
    ++popped;
  }
  return popped;
}

void PrefetchScheduler::AccrueFairnessLocked(std::size_t budget) {
  // Pass 1: classic DRR resets a queue-empty session's credit (it is not
  // underserved — it has nothing to serve) and sizes the active pool.
  double total_weight = 0.0;
  for (auto& [session_id, state] : sessions_) {
    if (state->pending_keys.empty()) {
      state->deficit = 0.0;
    } else {
      total_weight += state->weight;
    }
  }
  if (total_weight <= 0.0) return;
  // Pass 2: the round reserves budget x share slots for the fairness
  // slice; each active session's claim on them is its weight share. A fill
  // serving the session (any pass) charges 1 back, so a session served at
  // or above its share hovers at / below zero and never claims a slot.
  const double reserved =
      static_cast<double>(budget) * options_.fairness_share;
  for (auto& [session_id, state] : sessions_) {
    if (state->pending_keys.empty()) continue;
    state->deficit += reserved * state->weight / total_weight;
  }
  // Fractional slots bank across rounds (share 0.25 at batch size 1 =
  // every fourth slot), capped at one full batch so an idle stretch or an
  // EDF-saturated streak cannot bank an unbounded burst.
  fairness_credit_ =
      std::min(fairness_credit_ + reserved,
               static_cast<double>(batcher_.max_tiles()));
}

std::size_t PrefetchScheduler::FairnessClaimLocked(std::size_t budget) const {
  const auto credit = static_cast<std::size_t>(fairness_credit_);
  if (credit == 0) return 0;
  double claims = 0.0;
  for (const auto& [session_id, state] : sessions_) {
    if (state->pending_keys.empty() || state->deficit <= 0.0) continue;
    claims += std::ceil(state->deficit);
    if (claims >= static_cast<double>(budget)) break;
  }
  return std::min({budget, credit, static_cast<std::size_t>(claims)});
}

void PrefetchScheduler::PopFairnessLocked(std::size_t budget,
                                          std::vector<PoppedEntry>& batch) {
  std::size_t slots =
      std::min(budget, static_cast<std::size_t>(fairness_credit_));
  if (slots == 0) return;
  // Round-start top utility score, for promotion accounting — the same
  // lazy peek PopDeadlinesLocked uses (discarded stale nodes stay gone).
  double top_priority = 0.0;
  bool have_top = false;
  while (!heap_.empty()) {
    const HeapNode& node = heap_.top();
    auto eit = pending_.find(node.key);
    if (eit == pending_.end() || eit->second.stamp != node.stamp) {
      heap_.pop();
      continue;
    }
    top_priority = node.priority;
    have_top = true;
    break;
  }
  // Shadow charges: fills already popped this round (the EDF pass) serve
  // their subscribers before any deficit is actually charged (that happens
  // once the whole batch is formed), so selection must count them here or
  // one session could sweep several slots on a single round's credit.
  std::unordered_map<std::uint64_t, double> charged;
  for (const auto& popped : batch) {
    for (const auto& sub : popped.subs) charged[sub.session_id] += 1.0;
  }
  // Sessions whose every pending key was already popped this round: their
  // pending_keys lists are only pruned at pin time, so they can look
  // serveable without a live entry left.
  std::unordered_set<std::uint64_t> exhausted;
  while (slots > 0) {
    // The most-underserved session: largest (shadow-adjusted) positive
    // deficit, ties to the smaller id for determinism.
    SessionState* best = nullptr;
    std::uint64_t best_id = 0;
    double best_deficit = 0.0;
    for (auto& [session_id, state] : sessions_) {
      if (state->pending_keys.empty() || exhausted.count(session_id) > 0) {
        continue;
      }
      const auto cit = charged.find(session_id);
      const double deficit =
          state->deficit - (cit == charged.end() ? 0.0 : cit->second);
      if (deficit <= 0.0) continue;
      if (best == nullptr || deficit > best_deficit ||
          (deficit == best_deficit && session_id < best_id)) {
        best = state.get();
        best_id = session_id;
        best_deficit = deficit;
      }
    }
    if (best == nullptr) break;  // nobody underserved: credit stays banked
    // Serve the winner's best pending entry — the highest-priority one, so
    // the guaranteed slot also buys the most aggregate utility (and the
    // most co-subscribers) the session can offer.
    const tiles::TileKey* best_key = nullptr;
    Entry* best_entry = nullptr;
    for (const auto& key : best->pending_keys) {
      auto eit = pending_.find(key);
      if (eit == pending_.end()) continue;  // popped earlier this round
      if (best_entry == nullptr ||
          eit->second.priority > best_entry->priority) {
        best_key = &key;
        best_entry = &eit->second;
      }
    }
    if (best_entry == nullptr) {
      exhausted.insert(best_id);
      continue;
    }
    ++stats_.fairness_picks;
    if (have_top && best_entry->priority < top_priority) {
      ++stats_.fairness_promotions;
    }
    for (const auto& sub : best_entry->subs) {
      charged[sub.session_id] += 1.0;
    }
    batch.push_back(PoppedEntry{*best_key, std::move(best_entry->subs),
                                best_entry->enqueue_ms});
    pending_.erase(*best_key);  // its heap nodes are skipped by stamp at pop
    fairness_credit_ -= 1.0;
    --slots;
  }
}

void PrefetchScheduler::InvalidateLocked(SessionState& state,
                                         std::uint64_t session_id) {
  for (const auto& key : state.pending_keys) {
    auto eit = pending_.find(key);
    // pending_keys tracks only still-pending entries (DrainOne removes a
    // popped key from every subscriber's list), so the entry must exist.
    auto& subs = eit->second.subs;
    for (auto sit = subs.begin(); sit != subs.end(); ++sit) {
      if (sit->session_id == session_id) {
        subs.erase(sit);
        break;
      }
    }
    ++stats_.stale_drops;
    ++stats_.dedup_saved_fetches;
    if (subs.empty()) {
      pending_.erase(eit);  // its heap nodes are skipped by stamp at pop
    } else {
      RescoreLocked(key, eit->second);  // the merged priority decays
    }
  }
  if (shared_ != nullptr && !state.pending_keys.empty()) {
    shared_->NoteStaleDrops(state.pending_keys.size());
  }
  state.pending_keys.clear();
}

void PrefetchScheduler::SpawnWorkersLocked() {
  if (executor_ == nullptr || shutdown_) return;
  while (workers_ < options_.max_in_flight && workers_ < pending_.size()) {
    ++workers_;
    if (!executor_->Submit([this] { WorkerLoop(); })) {
      --workers_;  // executor already shut down; entries stay queued
      break;
    }
  }
}

void PrefetchScheduler::WorkerLoop() {
  for (;;) {
    DrainVerdict verdict = DrainBatch();
    if (verdict == DrainVerdict::kDrained) continue;
    std::lock_guard<std::mutex> lock(mu_);
    if (verdict == DrainVerdict::kDeferred) {
      // A partial batch is lingering for more keys. The in-flight fill
      // that licensed the deferral re-plans the queue when it settles (its
      // worker loops back into DrainBatch), so this worker can stand down.
      --workers_;
      cv_.notify_all();
      return;
    }
    // Re-check under the lock: an entry published between DrainBatch's
    // empty verdict and here would otherwise strand until the next Publish.
    if (pending_.empty() || shutdown_) {
      --workers_;
      cv_.notify_all();
      return;
    }
  }
}

void PrefetchScheduler::Publish(std::uint64_t session_id,
                                std::uint64_t generation,
                                std::vector<PrefetchCandidate> candidates,
                                double think_ms, std::uint64_t trace_id) {
  // Residency probe BEFORE the scheduler lock: one shard-locked Lookup per
  // candidate, on the publishing session's own thread. The Lookup both
  // captures already-resident tiles for immediate delivery (no second
  // probe, no lost-to-eviction window) and feeds the admission frequency
  // model with this session's predicted intent. Publishers must never
  // serialize on mu_ for per-candidate shard work — Publish runs inside
  // every HandleRequest.
  std::vector<tiles::TilePtr> resident(candidates.size());
  if (shared_ != nullptr) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      resident[i] = shared_->Lookup(
          candidates[i].key,
          CacheAccess{session_id, candidates[i].confidence});
    }
  }

  SessionState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;  // unknown session: nothing published
    state = it->second.get();
    // Supersede the previous publication before anything else: its
    // unfilled predictions are about a position the user has moved past.
    InvalidateLocked(*state, session_id);
    state->generation = generation;
    if (shutdown_ || state->unregistering) {
      // Retired on arrival; counted so the books still balance.
      stats_.predictions_published += candidates.size();
      stats_.dedup_saved_fetches += candidates.size();
      stats_.stale_drops += candidates.size();
      if (shared_ != nullptr) shared_->NoteStaleDrops(candidates.size());
      return;
    }
    // Every subscription of this publication shares one deadline: the
    // session statistically moves again think_ms from now. Free when
    // deadline scheduling is off (sub_deadline stays kNoDeadline and the
    // deadline heap is never touched).
    double sub_deadline = kNoDeadline;
    if (DeadlineEnabledLocked()) {
      const double think =
          think_ms > 0.0 ? think_ms : options_.default_think_ms;
      if (think > 0.0) sub_deadline = options_.clock->NowMillis() + think;
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const PrefetchCandidate& candidate = candidates[i];
      ++stats_.predictions_published;
      if (resident[i] != nullptr) {
        // Already in process memory: no fill to schedule. Still delivered
        // (below) so the session's private region fills like the paper's.
        ++stats_.already_resident;
        ++stats_.dedup_saved_fetches;
        continue;
      }
      auto [eit, fresh] = pending_.try_emplace(candidate.key);
      Entry& entry = eit->second;
      if (fresh && options_.clock != nullptr) {
        entry.enqueue_ms = options_.clock->NowMillis();
      }
      bool own = false;
      for (const auto& sub : entry.subs) {
        if (sub.session_id == session_id) {  // duplicate key in one list
          own = true;
          break;
        }
      }
      if (own) {
        ++stats_.merged_predictions;
        ++stats_.dedup_saved_fetches;
        continue;
      }
      entry.subs.push_back(Subscription{session_id, generation,
                                        candidate.confidence, sub_deadline,
                                        trace_id});
      if (!fresh) ++stats_.merged_predictions;
      state->pending_keys.push_back(candidate.key);
      RescoreLocked(candidate.key, entry);
    }
    stats_.max_queue_depth =
        std::max<std::uint64_t>(stats_.max_queue_depth, pending_.size());
    SpawnWorkersLocked();
  }

  std::size_t delivered = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (resident[i] == nullptr) continue;
    // Safe outside the lock: sessions are single-threaded by contract, so
    // nothing unregisters `state` while its own Publish is running.
    state->deliver(candidates[i].key, resident[i], generation);
    ++delivered;
  }
  if (delivered > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deliveries += delivered;
  }
}

bool PrefetchScheduler::DrainOne() {
  return DrainBatch() == DrainVerdict::kDrained;
}

PrefetchScheduler::DrainVerdict PrefetchScheduler::DrainBatch() {
  std::vector<PoppedEntry> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) return DrainVerdict::kEmpty;
    const double now_ms =
        options_.clock != nullptr ? options_.clock->NowMillis() : 0.0;
    double oldest_ms = now_ms;
    if (options_.clock != nullptr && options_.batch.max_linger_ms > 0.0 &&
        pending_.size() < batcher_.max_tiles()) {
      // The linger decision needs the oldest entry's age; only scanned for
      // partial batches, so the scan is bounded by one batch's size.
      // Entries stamped before a clock was wired carry kNoEnqueueStamp —
      // skipped here, or they would read as infinitely old and force-flush
      // every partial batch.
      for (const auto& [key, entry] : pending_) {
        if (entry.enqueue_ms < 0.0) continue;
        oldest_ms = std::min(oldest_ms, entry.enqueue_ms);
      }
    }
    // Deferral needs a live fill to re-plan the queue AND a clock to age
    // the linger out — without one, virtual time is frozen at 0 and a
    // deferred partial batch would never expire (the header documents a
    // null clock as "lingering disabled").
    const bool can_defer = in_flight_fills_ > 0 && options_.clock != nullptr;
    const std::size_t budget =
        batcher_.PlanPop(pending_.size(), oldest_ms, now_ms, can_defer);
    if (budget == 0) {
      // Lingering for a fuller batch. Safe: in_flight_fills_ > 0, and that
      // fill's worker re-plans the queue when it settles.
      ++stats_.batch_deferrals;
      return DrainVerdict::kDeferred;
    }
    if (FairnessEnabledLocked()) AccrueFairnessLocked(budget);
    if (DeadlineEnabledLocked()) {
      // Earliest-deadline-first pass: the most urgent above-the-bar
      // entries claim the batch before utility order gets a say — minus
      // whatever the fairness slice has banked claims for. Under
      // saturation EDF would otherwise fill every slot of every round
      // (all the hot entries carry deadlines) and the guaranteed share
      // would never be paid. Whatever budget remains backfills below in
      // plain utility order.
      std::size_t edf_budget = budget;
      if (FairnessEnabledLocked()) edf_budget -= FairnessClaimLocked(budget);
      if (edf_budget > 0) PopDeadlinesLocked(edf_budget, now_ms, batch);
    }
    if (FairnessEnabledLocked() && batch.size() < budget) {
      // Fairness slice: after EDF (urgency outranks the floor — a missed
      // deadline is unrecoverable, a delayed share is not), before utility
      // order (or the floor would only ever serve the popular sessions).
      PopFairnessLocked(budget - batch.size(), batch);
    }
    if (!DeadlineEnabledLocked() && batcher_.adjacency_enabled() &&
        budget - batch.size() > 1) {
      // Adjacency-aware pop: collect the valid entries clearing the
      // priority bar as candidates, let the batcher pick a run-shaped
      // subset, and RE-PUSH the rest. Their heap nodes carry the stamps
      // they were popped with, and their pending_ entries were never
      // touched, so lazy invalidation still recognizes them as current.
      const std::size_t remaining = budget - batch.size();
      std::vector<HeapNode> nodes;
      std::vector<storage::BatchCandidate> candidates;
      const std::size_t cap = batcher_.CandidateCap(remaining);
      double bar = 0.0;
      while (candidates.size() < cap && !heap_.empty()) {
        HeapNode node = heap_.top();
        auto eit = pending_.find(node.key);
        if (eit == pending_.end() || eit->second.stamp != node.stamp) {
          heap_.pop();  // superseded score or retired entry
          continue;
        }
        if (!candidates.empty() && node.priority < bar) break;
        heap_.pop();
        if (candidates.empty()) bar = batcher_.PriorityBar(node.priority);
        nodes.push_back(node);
        candidates.push_back(
            storage::BatchCandidate{node.key, node.priority});
      }
      const std::vector<std::size_t> chosen =
          batcher_.SelectAdjacent(candidates, remaining);
      std::vector<bool> take(candidates.size(), false);
      for (std::size_t i : chosen) {
        take[i] = true;
        // An index the strict-priority pop would not have reached yet was
        // pulled forward to complete a run.
        if (i >= chosen.size()) ++stats_.adjacency_reorders;
      }
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (!take[i]) {
          heap_.push(nodes[i]);
          continue;
        }
        auto eit = pending_.find(nodes[i].key);
        batch.push_back(PoppedEntry{nodes[i].key, std::move(eit->second.subs),
                                    eit->second.enqueue_ms});
        pending_.erase(eit);
      }
    }
    // Strict-priority pop. Also the backfill after an adjacency-aware pop:
    // the bar bounds which entries may be PROMOTED over higher-priority
    // ones, never how many ride the round trip, so a batch the selection
    // left partial (too few candidates cleared the bar) tops up here in
    // plain priority order from the re-pushed and below-bar entries.
    while (batch.size() < budget && !heap_.empty()) {
      HeapNode node = heap_.top();
      heap_.pop();
      auto eit = pending_.find(node.key);
      if (eit == pending_.end() || eit->second.stamp != node.stamp) {
        continue;  // superseded score or retired entry: lazy invalidation
      }
      batch.push_back(PoppedEntry{node.key, std::move(eit->second.subs),
                                  eit->second.enqueue_ms});
      pending_.erase(eit);
    }
    if (batch.empty()) return DrainVerdict::kEmpty;
    for (const auto& popped : batch) {
      for (const auto& sub : popped.subs) {
        auto sit = sessions_.find(sub.session_id);
        if (sit == sessions_.end()) continue;
        auto& keys = sit->second->pending_keys;
        auto kit = std::find(keys.begin(), keys.end(), popped.key);
        if (kit != keys.end()) keys.erase(kit);
        if (FairnessEnabledLocked()) {
          // Every fill serving this session repays its share claim,
          // whichever pass popped it. Floored just below zero so a
          // popular session cannot amass unbounded debt and then be
          // locked out for an era once its co-subscribers drop away.
          sit->second->deficit = std::max(sit->second->deficit - 1.0, -1.0);
        }
        // Pins the session (and its Delivery) until this fill settles.
        ++sit->second->in_flight;
      }
    }
    in_flight_fills_ += batch.size();
    if (batch_size_hist_ != nullptr) batch_size_hist_->Record(batch.size());
    if (queue_wait_us_ != nullptr && options_.clock != nullptr) {
      for (const auto& popped : batch) {
        if (popped.enqueue_ms < 0.0) continue;  // published clockless
        queue_wait_us_->Record(static_cast<std::uint64_t>(std::llround(
            std::max(now_ms - popped.enqueue_ms, 0.0) * 1000.0)));
      }
    }
  }

  // The fetch runs outside the scheduler lock: a slow DBMS query must not
  // block publishers or the other drain workers. The whole batch travels
  // in ONE backend round trip (FetchBatch under the cache landing).
  struct KeyOutcome {
    tiles::TilePtr tile;
    bool fetched = false;
    bool ok = true;
  };
  // Fill latency is timed per ROUND TRIP (the thing the backend charges
  // for), on the scheduler's clock; trace stamps ride the sink's clock so
  // they compose with the request-side spans.
  const double fetch_start_ms =
      options_.clock != nullptr ? options_.clock->NowMillis() : 0.0;
  const double trace_start_ms =
      options_.trace != nullptr ? options_.trace->NowMillis() : 0.0;
  std::vector<KeyOutcome> outcomes(batch.size());
  if (shared_ != nullptr) {
    std::vector<SharedTileCache::SharedBatchItem> items;
    items.reserve(batch.size());
    for (const auto& popped : batch) {
      SharedTileCache::SharedBatchItem item;
      item.key = popped.key;
      item.subscribers.reserve(popped.subs.size());
      for (const auto& sub : popped.subs) {
        item.subscribers.push_back(CacheAccess{sub.session_id, sub.confidence});
      }
      items.push_back(std::move(item));
    }
    auto results = shared_->GetOrFetchSharedBatch(items, store_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results[i].ok()) {
        outcomes[i].tile = results[i]->tile;
        outcomes[i].fetched = results[i]->fetched;
      } else {
        outcomes[i].ok = false;
      }
    }
  } else {
    std::vector<tiles::TileKey> keys;
    keys.reserve(batch.size());
    for (const auto& popped : batch) keys.push_back(popped.key);
    auto results = store_->FetchBatch(keys);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results[i].ok()) {
        outcomes[i].tile = std::move(*results[i]);
        outcomes[i].fetched = true;
      } else {
        outcomes[i].ok = false;
      }
    }
  }
  if (fill_latency_us_ != nullptr && options_.clock != nullptr) {
    fill_latency_us_->Record(static_cast<std::uint64_t>(std::llround(
        std::max(options_.clock->NowMillis() - fetch_start_ms, 0.0) *
        1000.0)));
  }
  if (options_.trace != nullptr) {
    // One prefetch.fetch span per batch entry a sampled request is
    // subscribed to, attributed to that request's trace. Entries no
    // sampled request cares about record nothing.
    const double trace_end_ms = options_.trace->NowMillis();
    for (const auto& popped : batch) {
      for (const auto& sub : popped.subs) {
        if (sub.trace_id == 0) continue;
        options_.trace->Record(telemetry::TraceEvent{
            sub.trace_id, sub.session_id, "prefetch.fetch", trace_start_ms,
            trace_end_ms});
        break;  // one span per entry: the first sampled subscriber owns it
      }
    }
  }

  // Classify each retirement and collect still-current delivery targets.
  struct Delivery {
    SessionState* session;
    std::size_t index;  ///< Into batch/outcomes.
    std::uint64_t generation;
  };
  std::vector<Delivery> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t fetch_attempts = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto& subs = batch[i].subs;
      if (outcomes[i].fetched || !outcomes[i].ok) {
        // One subscription pays for the (attempted) fetch; the rest merged.
        ++stats_.fills_issued;
        ++fetch_attempts;
        if (!outcomes[i].ok) ++stats_.fill_failures;
        stats_.dedup_saved_fetches += subs.size() - 1;
      } else {
        // Resident by fill time (e.g. a demand fetch landed it): nobody
        // pays.
        stats_.dedup_saved_fetches += subs.size();
      }
      if (!outcomes[i].ok) continue;
      for (const auto& sub : subs) {
        auto sit = sessions_.find(sub.session_id);
        if (sit == sessions_.end()) continue;
        SessionState& session = *sit->second;
        if (!session.unregistering && session.generation == sub.generation) {
          targets.push_back(Delivery{&session, i, sub.generation});
        }
      }
    }
    if (fetch_attempts > 0) {
      ++stats_.fetch_batches;
      if (fetch_attempts > 1) stats_.batched_fills += fetch_attempts;
    }
  }
  // Deliveries outside the lock: they take the receiving CacheManager's
  // region lock. The in_flight pins taken at pop keep every SessionState
  // alive until the settle step below, even for skipped targets.
  for (const auto& target : targets) {
    target.session->deliver(batch[target.index].key,
                            outcomes[target.index].tile, target.generation);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deliveries += targets.size();
    for (const auto& popped : batch) {
      for (const auto& sub : popped.subs) {
        auto sit = sessions_.find(sub.session_id);
        if (sit != sessions_.end() && sit->second->in_flight > 0) {
          --sit->second->in_flight;
        }
      }
    }
    in_flight_fills_ -= batch.size();
    cv_.notify_all();
  }
  return DrainVerdict::kDrained;
}

void PrefetchScheduler::CancelSession(std::uint64_t session_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  SessionState& state = *it->second;
  InvalidateLocked(state, session_id);
  cv_.wait(lock, [&state] { return state.in_flight == 0; });
}

void PrefetchScheduler::UnregisterSession(std::uint64_t session_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  SessionState& state = *it->second;
  state.unregistering = true;  // in-flight fills skip delivery from now on
  InvalidateLocked(state, session_id);
  cv_.wait(lock, [&state] { return state.in_flight == 0; });
  sessions_.erase(session_id);
}

void PrefetchScheduler::WaitForSession(std::uint64_t session_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  SessionState& state = *it->second;
  cv_.wait(lock, [&state] {
    return state.pending_keys.empty() && state.in_flight == 0;
  });
}

void PrefetchScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock,
           [this] { return pending_.empty() && in_flight_fills_ == 0; });
}

void PrefetchScheduler::Shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;
  // Retire every pending subscription: the delivery targets are about to
  // be destroyed, and a fill nobody will receive is pure waste.
  for (auto& [session_id, state] : sessions_) {
    InvalidateLocked(*state, session_id);
  }
  heap_ = {};
  deadline_heap_ = {};
  FC_CHECK_MSG(pending_.empty(), "pending entry with no live subscription");
  // Wake WaitForSession callers whose subscriptions were just retired —
  // this is the only site that invalidates on behalf of OTHER sessions.
  cv_.notify_all();
  cv_.wait(lock, [this] { return workers_ == 0 && in_flight_fills_ == 0; });
}

std::size_t PrefetchScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

PrefetchSchedulerStats PrefetchScheduler::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<PrefetchQueueEntry> PrefetchScheduler::SnapshotQueue() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PrefetchQueueEntry> snapshot;
  snapshot.reserve(pending_.size());
  for (const auto& [key, entry] : pending_) {
    double aggregate = 0.0;
    for (const auto& sub : entry.subs) aggregate += sub.confidence;
    snapshot.push_back(PrefetchQueueEntry{key, entry.priority, aggregate,
                                          entry.subs.size(), entry.enqueue_ms,
                                          entry.deadline_ms});
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const PrefetchQueueEntry& a, const PrefetchQueueEntry& b) {
              return a.priority > b.priority;
            });
  return snapshot;
}

std::uint64_t RegisterPrefetchSchedulerMetrics(
    telemetry::MetricsRegistry* registry, const PrefetchScheduler* scheduler) {
  return registry->AddSource([scheduler](telemetry::SnapshotSink& sink) {
    const PrefetchSchedulerStats s = scheduler->Stats();
    sink.AddCounter("fc.prefetch.predictions_published",
                    s.predictions_published);
    sink.AddCounter("fc.prefetch.merged_predictions", s.merged_predictions);
    sink.AddCounter("fc.prefetch.already_resident", s.already_resident);
    sink.AddCounter("fc.prefetch.fills_issued", s.fills_issued);
    sink.AddCounter("fc.prefetch.fill_failures", s.fill_failures);
    sink.AddCounter("fc.prefetch.dedup_saved_fetches", s.dedup_saved_fetches);
    sink.AddCounter("fc.prefetch.stale_drops", s.stale_drops);
    sink.AddCounter("fc.prefetch.deliveries", s.deliveries);
    sink.AddCounter("fc.prefetch.fetch_batches", s.fetch_batches);
    sink.AddCounter("fc.prefetch.batched_fills", s.batched_fills);
    sink.AddCounter("fc.prefetch.batch_deferrals", s.batch_deferrals);
    sink.AddCounter("fc.prefetch.adjacency_reorders", s.adjacency_reorders);
    sink.AddCounter("fc.prefetch.deadline_promotions", s.deadline_promotions);
    sink.AddCounter("fc.prefetch.deadline_misses", s.deadline_misses);
    sink.AddCounter("fc.prefetch.fairness_picks", s.fairness_picks);
    sink.AddCounter("fc.prefetch.fairness_promotions", s.fairness_promotions);
    sink.AddGauge("fc.prefetch.max_queue_depth",
                  static_cast<double>(s.max_queue_depth));
    sink.AddGauge("fc.prefetch.pending",
                  static_cast<double>(scheduler->pending()));
  });
}

}  // namespace fc::core
