#include "core/prefetch_scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace fc::core {

PrefetchScheduler::PrefetchScheduler(storage::TileStore* store,
                                     Executor* executor,
                                     SharedTileCache* shared,
                                     PrefetchSchedulerOptions options)
    : store_(store), executor_(executor), shared_(shared), options_(options) {
  FC_CHECK_MSG(store_ != nullptr, "PrefetchScheduler requires a tile store");
  if (options_.max_in_flight == 0) options_.max_in_flight = 1;
}

PrefetchScheduler::~PrefetchScheduler() { Shutdown(); }

std::uint64_t PrefetchScheduler::RegisterSession(std::uint64_t session_id,
                                                 Delivery deliver) {
  std::lock_guard<std::mutex> lock(mu_);
  if (session_id == 0 || sessions_.count(session_id) > 0) {
    session_id = next_auto_id_++;
  }
  auto state = std::make_unique<SessionState>();
  state->deliver = std::move(deliver);
  sessions_.emplace(session_id, std::move(state));
  return session_id;
}

void PrefetchScheduler::RescoreLocked(const tiles::TileKey& key, Entry& entry) {
  double aggregate = 0.0;
  for (const auto& sub : entry.subs) aggregate += sub.confidence;
  entry.priority = aggregate * static_cast<double>(entry.subs.size());
  entry.stamp = ++stamp_counter_;
  heap_.push(HeapNode{entry.priority, entry.stamp, key});
}

void PrefetchScheduler::InvalidateLocked(SessionState& state,
                                         std::uint64_t session_id) {
  for (const auto& key : state.pending_keys) {
    auto eit = pending_.find(key);
    // pending_keys tracks only still-pending entries (DrainOne removes a
    // popped key from every subscriber's list), so the entry must exist.
    auto& subs = eit->second.subs;
    for (auto sit = subs.begin(); sit != subs.end(); ++sit) {
      if (sit->session_id == session_id) {
        subs.erase(sit);
        break;
      }
    }
    ++stats_.stale_drops;
    ++stats_.dedup_saved_fetches;
    if (subs.empty()) {
      pending_.erase(eit);  // its heap nodes are skipped by stamp at pop
    } else {
      RescoreLocked(key, eit->second);  // the merged priority decays
    }
  }
  if (shared_ != nullptr && !state.pending_keys.empty()) {
    shared_->NoteStaleDrops(state.pending_keys.size());
  }
  state.pending_keys.clear();
}

void PrefetchScheduler::SpawnWorkersLocked() {
  if (executor_ == nullptr || shutdown_) return;
  while (workers_ < options_.max_in_flight && workers_ < pending_.size()) {
    ++workers_;
    if (!executor_->Submit([this] { WorkerLoop(); })) {
      --workers_;  // executor already shut down; entries stay queued
      break;
    }
  }
}

void PrefetchScheduler::WorkerLoop() {
  for (;;) {
    if (DrainOne()) continue;
    std::lock_guard<std::mutex> lock(mu_);
    // Re-check under the lock: an entry published between DrainOne's empty
    // verdict and here would otherwise strand until the next Publish.
    if (pending_.empty() || shutdown_) {
      --workers_;
      cv_.notify_all();
      return;
    }
  }
}

void PrefetchScheduler::Publish(std::uint64_t session_id,
                                std::uint64_t generation,
                                std::vector<PrefetchCandidate> candidates) {
  // Residency probe BEFORE the scheduler lock: one shard-locked Lookup per
  // candidate, on the publishing session's own thread. The Lookup both
  // captures already-resident tiles for immediate delivery (no second
  // probe, no lost-to-eviction window) and feeds the admission frequency
  // model with this session's predicted intent. Publishers must never
  // serialize on mu_ for per-candidate shard work — Publish runs inside
  // every HandleRequest.
  std::vector<tiles::TilePtr> resident(candidates.size());
  if (shared_ != nullptr) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      resident[i] = shared_->Lookup(
          candidates[i].key,
          CacheAccess{session_id, candidates[i].confidence});
    }
  }

  SessionState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;  // unknown session: nothing published
    state = it->second.get();
    // Supersede the previous publication before anything else: its
    // unfilled predictions are about a position the user has moved past.
    InvalidateLocked(*state, session_id);
    state->generation = generation;
    if (shutdown_ || state->unregistering) {
      // Retired on arrival; counted so the books still balance.
      stats_.predictions_published += candidates.size();
      stats_.dedup_saved_fetches += candidates.size();
      stats_.stale_drops += candidates.size();
      if (shared_ != nullptr) shared_->NoteStaleDrops(candidates.size());
      return;
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const PrefetchCandidate& candidate = candidates[i];
      ++stats_.predictions_published;
      if (resident[i] != nullptr) {
        // Already in process memory: no fill to schedule. Still delivered
        // (below) so the session's private region fills like the paper's.
        ++stats_.already_resident;
        ++stats_.dedup_saved_fetches;
        continue;
      }
      auto [eit, fresh] = pending_.try_emplace(candidate.key);
      Entry& entry = eit->second;
      bool own = false;
      for (const auto& sub : entry.subs) {
        if (sub.session_id == session_id) {  // duplicate key in one list
          own = true;
          break;
        }
      }
      if (own) {
        ++stats_.merged_predictions;
        ++stats_.dedup_saved_fetches;
        continue;
      }
      entry.subs.push_back(Subscription{session_id, generation,
                                        candidate.confidence});
      if (!fresh) ++stats_.merged_predictions;
      state->pending_keys.push_back(candidate.key);
      RescoreLocked(candidate.key, entry);
    }
    stats_.max_queue_depth =
        std::max<std::uint64_t>(stats_.max_queue_depth, pending_.size());
    SpawnWorkersLocked();
  }

  std::size_t delivered = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (resident[i] == nullptr) continue;
    // Safe outside the lock: sessions are single-threaded by contract, so
    // nothing unregisters `state` while its own Publish is running.
    state->deliver(candidates[i].key, resident[i], generation);
    ++delivered;
  }
  if (delivered > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deliveries += delivered;
  }
}

bool PrefetchScheduler::DrainOne() {
  tiles::TileKey key;
  std::vector<Subscription> subs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool found = false;
    while (!heap_.empty()) {
      HeapNode node = heap_.top();
      heap_.pop();
      auto eit = pending_.find(node.key);
      if (eit == pending_.end() || eit->second.stamp != node.stamp) {
        continue;  // superseded score or retired entry: lazy invalidation
      }
      key = node.key;
      subs = std::move(eit->second.subs);
      pending_.erase(eit);
      found = true;
      break;
    }
    if (!found) return false;
    for (const auto& sub : subs) {
      auto sit = sessions_.find(sub.session_id);
      if (sit == sessions_.end()) continue;
      auto& keys = sit->second->pending_keys;
      auto kit = std::find(keys.begin(), keys.end(), key);
      if (kit != keys.end()) keys.erase(kit);
      // Pins the session (and its Delivery) until this fill settles.
      ++sit->second->in_flight;
    }
    ++in_flight_fills_;
  }

  // The fetch runs outside the scheduler lock: a slow DBMS query must not
  // block publishers or the other drain workers.
  std::vector<CacheAccess> accesses;
  accesses.reserve(subs.size());
  for (const auto& sub : subs) {
    accesses.push_back(CacheAccess{sub.session_id, sub.confidence});
  }
  tiles::TilePtr tile;
  bool fetched = false;
  bool ok = true;
  if (shared_ != nullptr) {
    auto result = shared_->GetOrFetchShared(key, store_, accesses);
    if (result.ok()) {
      tile = result->tile;
      fetched = result->fetched;
    } else {
      ok = false;
    }
  } else {
    auto result = store_->Fetch(key);
    if (result.ok()) {
      tile = std::move(*result);
      fetched = true;
    } else {
      ok = false;
    }
  }

  // Classify the retirement and collect still-current delivery targets.
  std::vector<std::pair<SessionState*, std::uint64_t>> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fetched || !ok) {
      // One subscription pays for the (attempted) fetch; the rest merged.
      ++stats_.fills_issued;
      if (!ok) ++stats_.fill_failures;
      stats_.dedup_saved_fetches += subs.size() - 1;
    } else {
      // Resident by fill time (e.g. a demand fetch landed it): nobody pays.
      stats_.dedup_saved_fetches += subs.size();
    }
    if (ok) {
      for (const auto& sub : subs) {
        auto sit = sessions_.find(sub.session_id);
        if (sit == sessions_.end()) continue;
        SessionState& session = *sit->second;
        if (!session.unregistering && session.generation == sub.generation) {
          targets.emplace_back(&session, sub.generation);
        }
      }
    }
  }
  // Deliveries outside the lock: they take the receiving CacheManager's
  // region lock. The in_flight pin taken at pop keeps every SessionState
  // alive until the settle step below, even for skipped targets.
  for (auto& [session, generation] : targets) {
    session->deliver(key, tile, generation);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deliveries += targets.size();
    for (const auto& sub : subs) {
      auto sit = sessions_.find(sub.session_id);
      if (sit != sessions_.end() && sit->second->in_flight > 0) {
        --sit->second->in_flight;
      }
    }
    --in_flight_fills_;
    cv_.notify_all();
  }
  return true;
}

void PrefetchScheduler::CancelSession(std::uint64_t session_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  SessionState& state = *it->second;
  InvalidateLocked(state, session_id);
  cv_.wait(lock, [&state] { return state.in_flight == 0; });
}

void PrefetchScheduler::UnregisterSession(std::uint64_t session_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  SessionState& state = *it->second;
  state.unregistering = true;  // in-flight fills skip delivery from now on
  InvalidateLocked(state, session_id);
  cv_.wait(lock, [&state] { return state.in_flight == 0; });
  sessions_.erase(session_id);
}

void PrefetchScheduler::WaitForSession(std::uint64_t session_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  SessionState& state = *it->second;
  cv_.wait(lock, [&state] {
    return state.pending_keys.empty() && state.in_flight == 0;
  });
}

void PrefetchScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock,
           [this] { return pending_.empty() && in_flight_fills_ == 0; });
}

void PrefetchScheduler::Shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;
  // Retire every pending subscription: the delivery targets are about to
  // be destroyed, and a fill nobody will receive is pure waste.
  for (auto& [session_id, state] : sessions_) {
    InvalidateLocked(*state, session_id);
  }
  heap_ = {};
  FC_CHECK_MSG(pending_.empty(), "pending entry with no live subscription");
  // Wake WaitForSession callers whose subscriptions were just retired —
  // this is the only site that invalidates on behalf of OTHER sessions.
  cv_.notify_all();
  cv_.wait(lock, [this] { return workers_ == 0 && in_flight_fills_ == 0; });
}

std::size_t PrefetchScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

PrefetchSchedulerStats PrefetchScheduler::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<PrefetchQueueEntry> PrefetchScheduler::SnapshotQueue() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PrefetchQueueEntry> snapshot;
  snapshot.reserve(pending_.size());
  for (const auto& [key, entry] : pending_) {
    double aggregate = 0.0;
    for (const auto& sub : entry.subs) aggregate += sub.confidence;
    snapshot.push_back(
        PrefetchQueueEntry{key, entry.priority, aggregate, entry.subs.size()});
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const PrefetchQueueEntry& a, const PrefetchQueueEntry& b) {
              return a.priority > b.priority;
            });
  return snapshot;
}

}  // namespace fc::core
