// RoiTracker: the paper's Algorithm 1 — tracks the user's most recent
// Region Of Interest as the set of tiles visited between a zoom-in and the
// following zoom-out.

#ifndef FORECACHE_CORE_ROI_TRACKER_H_
#define FORECACHE_CORE_ROI_TRACKER_H_

#include <vector>

#include "core/request.h"
#include "tiles/tile_key.h"

namespace fc::core {

/// Stateful ROI heuristic. Feed every request through Update; read the last
/// completed ROI with roi().
///
/// Pattern matched (section 4.3.1): one zoom-in, then zero or more pans,
/// then one zoom-out. The zoom-in opens a temporary ROI collecting the
/// requested tiles; the zoom-out commits it.
class RoiTracker {
 public:
  RoiTracker() = default;

  /// Algorithm 1's UPDATEROI. Returns the current (possibly unchanged) ROI.
  const std::vector<tiles::TileKey>& Update(const TileRequest& request);

  /// The user's last completed ROI (empty until a zoom-in/zoom-out pair).
  const std::vector<tiles::TileKey>& roi() const { return roi_; }

  /// Tiles collected since the last zoom-in (the open, uncommitted ROI).
  const std::vector<tiles::TileKey>& temp_roi() const { return temp_roi_; }

  /// True while a zoom-in has opened a temporary ROI (Algorithm 1's inFlag).
  bool collecting() const { return in_flag_; }

  void Reset();

 private:
  std::vector<tiles::TileKey> roi_;
  std::vector<tiles::TileKey> temp_roi_;
  bool in_flag_ = false;
};

}  // namespace fc::core

#endif  // FORECACHE_CORE_ROI_TRACKER_H_
