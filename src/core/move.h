// The 9-move interaction vocabulary (paper section 5.2.2): zoom out, four
// pans, and four quadrant zoom-ins. "At k = 9, we are guaranteed to prefetch
// the correct tile, because the interface only supports nine different
// moves."

#ifndef FORECACHE_CORE_MOVE_H_
#define FORECACHE_CORE_MOVE_H_

#include <optional>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "tiles/tile_key.h"

namespace fc::core {

enum class Move : int {
  kPanLeft = 0,
  kPanRight = 1,
  kPanUp = 2,
  kPanDown = 3,
  kZoomOut = 4,
  kZoomInNW = 5,  ///< Zoom into child quadrant 0 (north-west).
  kZoomInNE = 6,  ///< quadrant 1
  kZoomInSW = 7,  ///< quadrant 2
  kZoomInSE = 8,  ///< quadrant 3
};

inline constexpr int kNumMoves = 9;

/// Coarse classification used by the phase features and ROI tracking.
enum class MoveClass { kPan, kZoomIn, kZoomOut };

MoveClass ClassOf(Move move);
bool IsPan(Move move);
bool IsZoomIn(Move move);
bool IsZoomOut(Move move);

/// Quadrant (0..3) of a zoom-in move. Precondition: IsZoomIn(move).
int ZoomQuadrant(Move move);

std::string_view MoveToString(Move move);
Result<Move> MoveFromString(std::string_view name);

/// All nine moves, in enum order.
const std::vector<Move>& AllMoves();

/// The tile reached by applying `move` at `from`, or nullopt when the move
/// leaves the pyramid (border pan, zoom past either end).
std::optional<tiles::TileKey> ApplyMove(const tiles::TileKey& from, Move move,
                                        const tiles::PyramidSpec& spec);

/// The move leading from `from` to an adjacent `to`, or nullopt if they are
/// not one move apart.
std::optional<Move> MoveBetween(const tiles::TileKey& from,
                                const tiles::TileKey& to);

/// Moves that stay inside the pyramid from `from`.
std::vector<Move> ValidMoves(const tiles::TileKey& from,
                             const tiles::PyramidSpec& spec);

}  // namespace fc::core

#endif  // FORECACHE_CORE_MOVE_H_
