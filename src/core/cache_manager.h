// CacheManager: decides what lives in the middleware cache (paper section 3).
//
// Two regions back one user session:
//  * a history LRU holding the last n requested tiles, and
//  * a prefetch region, re-filled after every request from the prediction
//    engine's ranked list (each recommendation model's share of the region
//    is the allocation strategy's decision, applied upstream by the engine
//    when it merges the two ranked lists).

#ifndef FORECACHE_CORE_CACHE_MANAGER_H_
#define FORECACHE_CORE_CACHE_MANAGER_H_

#include <memory>
#include <vector>

#include "core/tile_cache.h"
#include "storage/tile_store.h"

namespace fc::core {

struct CacheManagerOptions {
  std::size_t history_capacity = 8;  ///< Last-n-requests region (tiles).
  std::size_t prefetch_capacity = 8; ///< Upper bound on the prefetch region.
};

/// Outcome of serving one tile request.
struct FetchOutcome {
  tiles::TilePtr tile;
  bool cache_hit = false;  ///< Served from middleware memory (either region).
};

class CacheManager {
 public:
  /// `store` must outlive the manager.
  CacheManager(storage::TileStore* store, CacheManagerOptions options = {});

  /// Serves a client tile request: cache lookup first, then the backing
  /// store. The returned tile is retained in the history region.
  Result<FetchOutcome> Request(const tiles::TileKey& key);

  /// Replaces the prefetch region with `predictions` (ranked, highest
  /// priority first), fetching each tile from the backing store. Tiles
  /// already cached are not re-fetched. Fetch failures abort the fill.
  Status Prefetch(const std::vector<tiles::TileKey>& predictions);

  /// True if either region holds the tile (no stats side effects).
  bool Cached(const tiles::TileKey& key) const;

  void Clear();

  std::uint64_t requests() const { return requests_; }
  std::uint64_t cache_hits() const { return cache_hits_; }
  double HitRate() const;

  const LruTileCache& history_cache() const { return history_; }
  const LruTileCache& prefetch_cache() const { return prefetch_; }

 private:
  storage::TileStore* store_;
  CacheManagerOptions options_;
  LruTileCache history_;
  LruTileCache prefetch_;
  std::uint64_t requests_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace fc::core

#endif  // FORECACHE_CORE_CACHE_MANAGER_H_
