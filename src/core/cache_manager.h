// CacheManager: the per-session layer of the middleware cache (paper
// section 3).
//
// Two private regions back one user session:
//  * a history LRU holding the last n requested tiles, and
//  * a prefetch region, re-filled after every request from the prediction
//    engine's ranked list (each recommendation model's share of the region
//    is the allocation strategy's decision, applied upstream by the engine
//    when it merges the two ranked lists).
//
// Optionally the manager sits on top of a process-wide SharedTileCache: a
// request missing both private regions probes the shared cache before the
// backing store, and every tile fetched (on demand or by prefetch) is
// published there for other sessions.
//
// Thread-safety: all methods may be called concurrently — in the async
// serving stack the session thread calls Request while an executor worker
// runs Prefetch. Region state is mutex-guarded; backing-store fetches happen
// outside the lock so a slow DBMS query never blocks the session thread's
// region lookups. Stats are atomics.

#ifndef FORECACHE_CORE_CACHE_MANAGER_H_
#define FORECACHE_CORE_CACHE_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/prefetch_scheduler.h"
#include "core/shared_tile_cache.h"
#include "core/tile_cache.h"
#include "storage/tile_store.h"

namespace fc::core {

struct CacheManagerOptions {
  /// Byte budget of the last-n-requests region. To size for n nominal tiles
  /// use n * tile_width * tile_height * num_attrs * sizeof(double).
  std::size_t history_bytes = 256 * 1024;
  /// Byte budget of the prefetch region (bounds how much of the ranked
  /// prediction list is materialized).
  std::size_t prefetch_bytes = 256 * 1024;
  /// Identity stamped on every shared-cache access this manager makes, so
  /// admission control and per-session quotas can attribute the traffic.
  /// 0 = anonymous (quota-exempt); the SessionManager assigns real ids.
  std::uint64_t session_id = 0;
};

/// Outcome of serving one tile request.
struct FetchOutcome {
  tiles::TilePtr tile;
  bool cache_hit = false;   ///< Served from middleware memory (any region).
  bool shared_hit = false;  ///< The hit came from the shared cache, not a
                            ///< private region (always false without one).
};

class CacheManager {
 public:
  /// `store` (and `shared`, when given) must outlive the manager. With a
  /// null `shared` the manager behaves exactly like the original
  /// private-regions-only design.
  CacheManager(storage::TileStore* store, CacheManagerOptions options = {},
               SharedTileCache* shared = nullptr);

  /// Serves a client tile request: private regions, then the shared cache,
  /// then the backing store. The returned tile is retained in the history
  /// region (and published to the shared cache on a store fetch).
  Result<FetchOutcome> Request(const tiles::TileKey& key);

  /// Replaces the prefetch region with `predictions` (ranked, highest
  /// priority first), fetching each tile from the shared cache or backing
  /// store until the region's byte budget is spent. Tiles already in a
  /// private region are not re-fetched (but still charge the budget). A
  /// fetch failure skips that tile (counted in prefetch_failures()) and
  /// continues down the ranked list, so one bad tile cannot starve the rest.
  Status Prefetch(const std::vector<tiles::TileKey>& predictions);

  /// As above, but polls `cancelled` between tiles and stops early when it
  /// returns true — the async server cancels a fill superseded by a newer
  /// request. Aborted fills leave the region partially updated.
  Status Prefetch(const std::vector<tiles::TileKey>& predictions,
                  const std::function<bool()>& cancelled);

  /// As above with the engine's per-tile confidences (parallel to
  /// `predictions`; missing entries read as 0): each shared-cache fill
  /// carries its confidence so a near-certain prediction takes the
  /// priority-admission path past the frequency filter.
  Status Prefetch(const std::vector<tiles::TileKey>& predictions,
                  const std::vector<double>& confidences,
                  const std::function<bool()>& cancelled);

  /// Scheduler-mode fill, step 1 (the submission API swap): instead of
  /// fetching the ranked list itself, the session plans it for the
  /// process-wide PrefetchScheduler. Clears the prefetch region, gates
  /// AcceptPrefetched on `generation` (the server's per-request counter,
  /// monotonic), and returns the ranked candidates to publish — skipping
  /// tiles the history region already holds and in-list duplicates.
  /// Thread-safe.
  std::vector<PrefetchCandidate> BeginPrefetch(
      const std::vector<tiles::TileKey>& predictions,
      const std::vector<double>& confidences, std::uint64_t generation);

  /// Scheduler-mode fill, step 2: the scheduler's delivery callback lands a
  /// completed fill here. Retained only while `generation` is still the
  /// current fill (a newer BeginPrefetch or Clear rejects stragglers — the
  /// generation-based invalidation that keeps superseded fills out of a
  /// re-planned region). Returns true when the tile was retained. Unlike
  /// the synchronous Prefetch, byte-budget overflow evicts the region's
  /// least-recently-delivered tile rather than ending the fill (deliveries
  /// arrive in queue-priority order, not submission order). Thread-safe.
  bool AcceptPrefetched(const tiles::TileKey& key, const tiles::TilePtr& tile,
                        std::uint64_t generation);

  /// Closes the scheduler-mode fill gate without touching region contents:
  /// every AcceptPrefetched delivery is rejected until the next
  /// BeginPrefetch. The server calls this when cancelling a fill, so
  /// deliveries from still-settling merged fills cannot land in a region
  /// the session has abandoned. Thread-safe.
  void AbortPrefetch();

  /// True if a private region holds the tile (no stats side effects).
  bool Cached(const tiles::TileKey& key) const;

  void Clear();

  std::uint64_t requests() const { return requests_; }
  /// Hits from any middleware memory: private regions or shared cache.
  std::uint64_t cache_hits() const { return private_hits_ + shared_hits_; }
  /// Hits from this session's own history/prefetch regions only. Unlike
  /// cache_hits(), this is deterministic for a given trace regardless of
  /// what other sessions are doing (the shared cache's contents depend on
  /// scheduling; the private regions do not).
  std::uint64_t private_hits() const { return private_hits_; }
  std::uint64_t shared_hits() const { return shared_hits_; }
  /// Ranked-list entries dropped because their fetch failed.
  std::uint64_t prefetch_failures() const { return prefetch_failures_; }
  double HitRate() const;
  double PrivateHitRate() const;

  /// Region accessors for inspection. Not synchronized: callers must
  /// quiesce concurrent Request/Prefetch activity first (e.g. via
  /// ForeCacheServer::WaitForPrefetch).
  const LruTileCache& history_cache() const { return history_; }
  const LruTileCache& prefetch_cache() const { return prefetch_; }

 private:
  /// Fetches through the shared cache when present, else the store.
  /// `confidence` tags the shared-cache access (0 for demand traffic).
  Result<tiles::TilePtr> FetchThrough(const tiles::TileKey& key,
                                      double confidence);

  storage::TileStore* store_;
  CacheManagerOptions options_;
  SharedTileCache* shared_;

  mutable std::mutex mu_;  ///< Guards history_, prefetch_, and the fill gate.
  LruTileCache history_;
  LruTileCache prefetch_;
  /// Scheduler-mode fill gate: AcceptPrefetched only lands deliveries
  /// carrying the generation of the latest BeginPrefetch. Closed by Clear.
  std::uint64_t fill_generation_ = 0;
  bool fill_open_ = false;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> private_hits_{0};
  std::atomic<std::uint64_t> shared_hits_{0};
  std::atomic<std::uint64_t> prefetch_failures_{0};
};

}  // namespace fc::core

#endif  // FORECACHE_CORE_CACHE_MANAGER_H_
