#include "core/sb_recommender.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fc::core {

SbRecommender::SbRecommender(const tiles::TileMetadataStore* metadata,
                             const vision::SignatureToolbox* toolbox,
                             SbRecommenderOptions options)
    : metadata_(metadata), toolbox_(toolbox), options_(std::move(options)) {
  if (options_.signature_weights.empty()) {
    options_.signature_weights[vision::SignatureKind::kSift] = 1.0;
  }
  for (const auto& [kind, weight] : options_.signature_weights) {
    kinds_.push_back(kind);
    weights_.push_back(weight);
  }
}

Result<double> SbRecommender::PenalizedSignatureDistance(
    vision::SignatureKind kind, const tiles::TileKey& a,
    const tiles::TileKey& b) const {
  FC_ASSIGN_OR_RETURN(const auto* sig_a, metadata_->GetSignature(a, kind));
  FC_ASSIGN_OR_RETURN(const auto* sig_b, metadata_->GetSignature(b, kind));
  FC_ASSIGN_OR_RETURN(auto* extractor, toolbox_->Get(kind));
  double raw = extractor->Distance(*sig_a, *sig_b);
  // Algorithm 3 line 8: d_i,A,B <- 2^(dmanh(A,B)-1) * dist_Si(...).
  std::int64_t manh = tiles::TileKey::ManhattanDistance(a, b);
  double penalty = std::pow(2.0, static_cast<double>(manh) - 1.0);
  return penalty * raw;
}

Result<double> SbRecommender::PairDistance(
    const tiles::TileKey& candidate, const tiles::TileKey& reference,
    const std::map<vision::SignatureKind, double>& per_signature_max) const {
  // Algorithm 3 lines 12-13: weighted l2-norm of normalized per-signature
  // distances, divided by the physical distance.
  double sum = 0.0;
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    FC_ASSIGN_OR_RETURN(double d,
                        PenalizedSignatureDistance(kinds_[i], candidate, reference));
    auto it = per_signature_max.find(kinds_[i]);
    double dmax = (it != per_signature_max.end() && it->second > 0.0) ? it->second : 1.0;
    double normalized = d / dmax;
    sum += weights_[i] * normalized * normalized;
  }
  double physical = static_cast<double>(
      std::max<std::int64_t>(1, tiles::TileKey::ManhattanDistance(candidate, reference)));
  return std::sqrt(sum) / physical;
}

Result<RankedTiles> SbRecommender::Recommend(const PredictionContext& ctx) const {
  if (ctx.history == nullptr || ctx.spec == nullptr) {
    return Status::InvalidArgument("sb: prediction context missing history/spec");
  }

  // Reference set: the last ROI, else recent history tiles, else the
  // current tile (a degenerate but well-defined reference).
  std::vector<tiles::TileKey> references = ctx.roi;
  if (references.empty()) {
    for (const auto& r : ctx.history->entries()) {
      if (std::find(references.begin(), references.end(), r.tile) ==
          references.end()) {
        references.push_back(r.tile);
      }
    }
    constexpr std::size_t kMaxFallbackRefs = 4;
    if (references.size() > kMaxFallbackRefs) {
      references.erase(references.begin(),
                       references.end() - static_cast<std::ptrdiff_t>(kMaxFallbackRefs));
    }
  }
  if (references.empty()) references.push_back(ctx.request.tile);

  // A candidate that is itself a reference tile (the user just came from
  // it) carries no similarity information — comparing a tile with itself
  // yields distance zero and would waste the top prefetch slot on a tile
  // the user already holds. Skip such pairs (unless they are all we have).
  auto skip_self = [&references](const tiles::TileKey& cand,
                                 const tiles::TileKey& ref) {
    return references.size() > 1 && cand == ref;
  };

  // Lines 1-9: compute penalized distances and per-signature maxima.
  std::map<vision::SignatureKind, double> sig_max;
  for (auto kind : kinds_) sig_max[kind] = 1.0;  // d_i,MAX <- 1 (line 2)
  for (const auto& cand : ctx.candidates) {
    for (const auto& ref : references) {
      if (skip_self(cand, ref)) continue;
      for (auto kind : kinds_) {
        auto d = PenalizedSignatureDistance(kind, cand, ref);
        // Candidates lacking metadata simply do not raise the max.
        if (d.ok()) sig_max[kind] = std::max(sig_max[kind], *d);
      }
    }
  }

  // Lines 10-15: normalized, weighted, physical-distance-scaled pair
  // distances, summed per candidate over all reference tiles.
  //
  // Candidates the user has requested recently are demoted below all fresh
  // candidates: the middleware's history region already holds the last n
  // tiles, so SB's job is to surface NEW tiles that look like the user's
  // recent interest ("find more mountains", section 4.3.3) — re-predicting
  // a resident tile wastes a prefetch slot.
  struct Scored {
    tiles::TileKey key;
    double distance;
    bool recently_requested;
    int tiebreak;
  };
  auto in_history = [&ctx](const tiles::TileKey& key) {
    for (const auto& r : ctx.history->entries()) {
      if (r.tile == key) return true;
    }
    return false;
  };
  std::vector<Scored> scored;
  scored.reserve(ctx.candidates.size());
  for (std::size_t i = 0; i < ctx.candidates.size(); ++i) {
    const auto& cand = ctx.candidates[i];
    double total = 0.0;
    bool any = false;
    for (const auto& ref : references) {
      if (skip_self(cand, ref)) continue;
      auto d = PairDistance(cand, ref, sig_max);
      if (d.ok()) {
        total += *d;
        any = true;
      }
    }
    // Candidates without metadata rank last (infinite distance).
    double dist = any ? total : std::numeric_limits<double>::infinity();
    scored.push_back({cand, dist, in_history(cand), static_cast<int>(i)});
  }
  std::stable_sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.recently_requested != b.recently_requested) {
      return !a.recently_requested;  // fresh tiles first
    }
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.tiebreak < b.tiebreak;
  });
  RankedTiles out;
  out.reserve(scored.size());
  for (const auto& s : scored) out.push_back(s.key);
  return out;
}

}  // namespace fc::core
