// Tile requests, analysis phases, session history (paper section 4.1), and
// trace logs (the training-data format: "a set of traces {U1, U2, ...}").

#ifndef FORECACHE_CORE_REQUEST_H_
#define FORECACHE_CORE_REQUEST_H_

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/move.h"
#include "tiles/tile_key.h"

namespace fc::core {

/// The user's frame of mind while exploring (paper section 4.2.1).
enum class AnalysisPhase : int {
  kForaging = 0,     ///< Scanning coarse levels for interesting regions.
  kSensemaking = 1,  ///< Comparing neighboring detailed tiles.
  kNavigation = 2,   ///< Zooming between the two.
};

inline constexpr int kNumPhases = 3;

std::string_view AnalysisPhaseToString(AnalysisPhase phase);
Result<AnalysisPhase> AnalysisPhaseFromString(std::string_view name);

/// One user interaction: the move made and the tile it retrieved.
struct TileRequest {
  tiles::TileKey tile;
  /// The move that produced this request; nullopt for the session's first
  /// request (the initial viewport has no preceding move).
  std::optional<Move> move;

  friend bool operator==(const TileRequest&, const TileRequest&) = default;
};

/// The cache manager "constantly records the user's last n moves" and hands
/// them to the prediction engine as H = [r1..rn] (paper section 4.1).
class SessionHistory {
 public:
  /// `capacity` is the paper's history length n.
  explicit SessionHistory(std::size_t capacity = 8);

  void Add(const TileRequest& request);
  void Clear();

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return entries_.empty(); }

  /// Oldest-first view of the retained requests.
  const std::deque<TileRequest>& entries() const { return entries_; }

  /// The most recent request, or nullopt when empty.
  std::optional<TileRequest> Last() const;

  /// Move symbols (enum values) of the retained requests, oldest first;
  /// requests without a move (session start) are skipped.
  std::vector<int> MoveSymbols() const;

 private:
  std::size_t capacity_;
  std::deque<TileRequest> entries_;
};

/// One labeled request within a recorded session.
struct TraceRecord {
  TileRequest request;
  AnalysisPhase phase = AnalysisPhase::kForaging;  ///< Ground-truth label.
};

/// One user session: an ordered request log (paper: trace U_j).
struct Trace {
  std::string user_id;
  int task_id = 0;
  std::vector<TraceRecord> records;

  /// Move-symbol sequence of the trace (skips the first, move-less request).
  std::vector<int> MoveSymbols() const;
};

/// CSV round-trip for trace sets. Columns:
/// user_id,task_id,seq,level,x,y,move,phase
Status WriteTracesCsv(const std::string& path, const std::vector<Trace>& traces);
Result<std::vector<Trace>> ReadTracesCsv(const std::string& path);

}  // namespace fc::core

#endif  // FORECACHE_CORE_REQUEST_H_
