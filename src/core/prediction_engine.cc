#include "core/prediction_engine.h"

#include <algorithm>

namespace fc::core {

PredictionEngine::PredictionEngine(const tiles::PyramidSpec* spec,
                                   const PhaseClassifier* classifier,
                                   const Recommender* ab, const Recommender* sb,
                                   const AllocationStrategy* strategy,
                                   PredictionEngineOptions options)
    : spec_(spec),
      classifier_(classifier),
      ab_(ab),
      sb_(sb),
      strategy_(strategy),
      options_(options),
      history_(options.history_length) {}

void PredictionEngine::Reset() {
  history_.Clear();
  roi_tracker_.Reset();
}

RankedTiles MergeRankedLists(const RankedTiles& ab, const RankedTiles& sb,
                             const Allocation& allocation, std::size_t k) {
  const RankedTiles& first = allocation.ab_first ? ab : sb;
  const RankedTiles& second = allocation.ab_first ? sb : ab;
  std::size_t first_slots = allocation.ab_first ? allocation.ab_slots
                                                : allocation.sb_slots;

  RankedTiles merged;
  merged.reserve(k);
  auto add_unique = [&merged](const tiles::TileKey& key) {
    if (std::find(merged.begin(), merged.end(), key) == merged.end()) {
      merged.push_back(key);
      return true;
    }
    return false;
  };

  for (const auto& key : first) {
    if (merged.size() >= std::min(first_slots, k)) break;
    add_unique(key);
  }
  for (const auto& key : second) {
    if (merged.size() >= k) break;
    add_unique(key);
  }
  // If the second list ran dry (or was empty), let the first list overflow
  // its nominal slots — unfilled budget is wasted otherwise.
  for (const auto& key : first) {
    if (merged.size() >= k) break;
    add_unique(key);
  }
  return merged;
}

Result<EnginePrediction> PredictionEngine::OnRequest(const TileRequest& request) {
  // State updates happen before prediction: the request being served is part
  // of H when the engine predicts what comes next (paper section 4.1).
  history_.Add(request);
  roi_tracker_.Update(request);

  EnginePrediction prediction;
  prediction.phase =
      classifier_ != nullptr ? classifier_->Predict(request) : fallback_phase;

  PredictionContext ctx;
  ctx.request = request;
  ctx.history = &history_;
  ctx.spec = spec_;
  // Reference tiles for the SB model: the last committed ROI plus whatever
  // the user has visited since the current zoom-in (paper Figure 6b — the
  // "tiles in the user's history" of the region being explored right now).
  ctx.roi = roi_tracker_.roi();
  for (const auto& key : roi_tracker_.temp_roi()) {
    if (std::find(ctx.roi.begin(), ctx.roi.end(), key) == ctx.roi.end()) {
      ctx.roi.push_back(key);
    }
  }
  ctx.candidates = CandidateTiles(request.tile, *spec_, options_.candidate_distance);

  prediction.allocation = strategy_->Allocate(prediction.phase, options_.prefetch_k);

  // A configured-but-missing model cedes its slots to the other before any
  // list is computed.
  if (ab_ == nullptr) {
    prediction.allocation.sb_slots += prediction.allocation.ab_slots;
    prediction.allocation.ab_slots = 0;
    prediction.allocation.ab_first = false;
  }
  if (sb_ == nullptr) {
    prediction.allocation.ab_slots += prediction.allocation.sb_slots;
    prediction.allocation.sb_slots = 0;
    prediction.allocation.ab_first = true;
  }

  RankedTiles ab_list;
  RankedTiles sb_list;
  if (prediction.allocation.ab_slots > 0 && ab_ != nullptr) {
    FC_ASSIGN_OR_RETURN(ab_list, ab_->Recommend(ctx));
  }
  if (prediction.allocation.sb_slots > 0 && sb_ != nullptr) {
    FC_ASSIGN_OR_RETURN(sb_list, sb_->Recommend(ctx));
  }

  prediction.tiles = MergeRankedLists(ab_list, sb_list, prediction.allocation,
                                      options_.prefetch_k);
  prediction.confidences.reserve(prediction.tiles.size());
  for (std::size_t i = 0; i < prediction.tiles.size(); ++i) {
    const tiles::TileKey& tile = prediction.tiles[i];
    const bool both_models_agree =
        std::find(ab_list.begin(), ab_list.end(), tile) != ab_list.end() &&
        std::find(sb_list.begin(), sb_list.end(), tile) != sb_list.end();
    const double rank_decay = 1.0 / static_cast<double>(1 + i);
    prediction.confidences.push_back(both_models_agree ? rank_decay
                                                       : 0.6 * rank_decay);
  }
  return prediction;
}

}  // namespace fc::core
