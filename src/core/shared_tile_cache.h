// SharedTileCache: the process-wide middleware tile cache.
//
// Paper section 6.2 leaves the multi-user setting as future work; this is
// our answer to it. Every session keeps its small private history/prefetch
// regions (CacheManager), but all sessions share one byte-budgeted tile
// cache underneath, so a tile fetched for one user is a memory hit for every
// other user exploring the same region — the DBMS sees each hot tile once,
// not once per session.
//
// Memory governance is byte-accurate and two-tiered:
//  * L1 holds decoded tiles ready to serve, bounded by `l1_bytes`.
//  * L2 (optional) holds codec-compressed blobs of tiles demoted from L1,
//    bounded by `l2_bytes`. An L2 hit decodes the blob, promotes the tile
//    back into L1, and costs decode time instead of a DBMS query. Only when
//    the L2 budget is exhausted is a tile truly evicted from the process.
//
// Multi-tenant fairness (this PR): admission into L1 is policy-gated. A
// TinyLFU frequency sketch (see core/admission.h) rejects cold tiles that
// would displace warmer ones, so a scan-heavy session cannot flush every
// other session's hot set; prefetch fills carrying high prediction
// confidence bypass the filter (priority admission); and optional
// per-session byte quotas bound how much L1 any one session's fetches may
// occupy — quota pressure evicts the offender's own oldest tiles, never a
// neighbor's. Callers identify themselves per access via CacheAccess.
//
// Concurrency: the key space is striped across shards, each with its own
// mutex, per-tier eviction state, admission policy, and stat counters.
// Counters are plain integers mutated only under their shard's lock;
// Stats() locks every shard in index order and sums, so a snapshot never
// mixes a shard's pre-update counter with another's post-update one.

#ifndef FORECACHE_CORE_SHARED_TILE_CACHE_H_
#define FORECACHE_CORE_SHARED_TILE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "core/admission.h"
#include "storage/tile_codec.h"
#include "storage/tile_store.h"
#include "tiles/tile.h"
#include "tiles/tile_key.h"

namespace fc::core {

/// How a full shard chooses a victim. kLru evicts the least-recently-touched
/// tile; kFifo evicts in insertion order (cheaper: hits skip the bookkeeping
/// write, at the price of keeping stale-but-recently-hot tiles no longer).
enum class EvictionPolicyKind { kLru, kFifo };

/// Who is touching the cache, and how sure the prediction engine was that
/// they would. Defaults describe an anonymous demand access: subject to the
/// admission filter, exempt from (and uncharged against) session quotas.
struct CacheAccess {
  /// Stable nonzero id of the requesting session; 0 = anonymous.
  std::uint64_t session_id = 0;
  /// Prediction confidence in [0, 1] for prefetch fills (0 for demand
  /// requests). At or above AdmissionOptions::priority_confidence the
  /// frequency filter is bypassed.
  double confidence = 0.0;
};

struct SharedTileCacheOptions {
  /// Byte budget of the decoded (L1) tier, summed Tile::SizeBytes.
  std::size_t l1_bytes = 64ull << 20;
  /// Byte budget of the compressed (L2) tier, summed blob bytes. 0 disables
  /// the tier: tiles demoted from L1 are evicted outright.
  std::size_t l2_bytes = 0;
  /// Lock stripes. 0 (the default) picks automatically: up to 16 shards,
  /// but never so many that a shard's L1 slice drops below a few MiB — a
  /// small budget degrades to fewer stripes, not to uncacheable slivers.
  /// Explicit values are honored as-is. Budgets are ceil-divided across
  /// shards and enforced strictly per shard: a tile larger than its
  /// shard's slice is served but never cached, so when setting this
  /// explicitly keep l1_bytes / num_shards comfortably above one tile.
  std::size_t num_shards = 0;
  EvictionPolicyKind eviction = EvictionPolicyKind::kLru;
  /// Encoding for L2 blobs. The default delta-varint quantization bounds
  /// absolute error at quant_step/2 — set encoding = kRawF64 for a lossless
  /// (but incompressible) warm tier.
  storage::TileCodecOptions codec{storage::TileEncoding::kDeltaVarint, 1e-4};
  /// Admission control (default: admit everything, the pre-PR-3 behavior).
  AdmissionOptions admission;
  /// Per-session L1 byte quota, ceil-divided across shards like the tier
  /// budgets. 0 disables quotas; anonymous accesses (session_id 0) are
  /// never charged. A session over its quota in a shard evicts its own
  /// oldest tiles there, leaving other sessions' residency untouched.
  std::size_t session_quota_bytes = 0;
};

/// Point-in-time counters, summed over a consistent all-shards snapshot.
/// Invariants: hits == l1_hits + l2_hits; hits + misses == lookups;
/// admission_attempts == insertions + admission_rejects; and once no
/// operation is in flight, insertions - evictions == resident tiles across
/// both tiers (modulo Clear).
struct SharedTileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;  ///< True drops out of the process.

  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t demotions = 0;   ///< L1 -> L2 compactions.
  std::uint64_t promotions = 0;  ///< L2 -> L1 decodes (== l2_hits).

  std::uint64_t encode_ns = 0;  ///< Total time compressing demoted tiles.
  std::uint64_t decode_ns = 0;  ///< Total time decoding L2 hits.

  /// Offers of a not-yet-resident tile to L1 (demand publishes, prefetch
  /// fills, and promotions whose L2 copy vanished mid-decode). Every
  /// attempt either becomes an insertion or an admission_reject.
  std::uint64_t admission_attempts = 0;
  /// Attempts refused: colder than every victim they would displace, or
  /// oversized for the shard budget / session quota.
  std::uint64_t admission_rejects = 0;
  /// Admissions that bypassed the frequency filter on high prediction
  /// confidence (only counted when the filter would actually have run).
  std::uint64_t priority_admits = 0;
  /// L1 entries displaced because their owning session exceeded its quota
  /// (they demote to L2 like any other displacement when the tier exists).
  std::uint64_t quota_evictions = 0;

  /// Multi-owner fill accounting (the cross-session PrefetchScheduler's
  /// merged fills — see core/prefetch_scheduler.h). Subscriber interests
  /// that arrived through merged (multi-subscriber) fills.
  std::uint64_t merged_predictions = 0;
  /// Subscriber fetch intents satisfied without their own backing-store
  /// query: the tile was resident, or one fetch served the whole group.
  std::uint64_t dedup_saved_fetches = 0;
  /// Scheduler subscriptions invalidated (superseded predictions) before
  /// their fill ran. Fed by PrefetchScheduler via NoteStaleDrops().
  std::uint64_t stale_drops = 0;

  /// Batched backend I/O (GetOrFetchSharedBatch). Backend round trips that
  /// carried the misses of a whole batch (one FetchBatch call each).
  std::uint64_t batches_issued = 0;
  /// Tiles fetched through those round trips (sums each batch's misses).
  std::uint64_t batched_tiles = 0;
  /// Round trips amortized away: for every batch, the per-tile path would
  /// have issued one query per missing tile — batched_tiles -
  /// batches_issued of them never happened.
  std::uint64_t fetch_rounds_saved = 0;

  std::uint64_t l1_bytes_resident = 0;
  std::uint64_t l2_bytes_resident = 0;
  std::uint64_t bytes_resident = 0;  ///< Both tiers.

  double HitRate() const {
    auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Sharded, thread-safe, byte-budgeted two-tier tile cache with policy-gated
/// admission and per-session fairness quotas.
class SharedTileCache {
 public:
  explicit SharedTileCache(SharedTileCacheOptions options = {});

  /// Returns the cached tile, or null. An L1 hit (for LRU) freshens the
  /// entry; an L2 hit decodes the blob and promotes it back into L1. Every
  /// lookup feeds the admission policy's frequency model.
  tiles::TilePtr Lookup(const tiles::TileKey& key,
                        const CacheAccess& access = {});

  /// Offers a tile to L1 (or refreshes the resident copy), demoting and
  /// evicting per policy until byte budgets and quotas hold. A new tile may
  /// be rejected by the admission filter — it is simply not cached. Null
  /// tiles are ignored.
  void Insert(const tiles::TileKey& key, tiles::TilePtr tile,
              const CacheAccess& access = {});

  /// Cache-through fetch: Lookup, and on a miss fetch from `store` and
  /// Insert. Concurrent misses on the same key may each fetch unless `store`
  /// is a SingleFlightTileStore (the SessionManager wires one in).
  Result<tiles::TilePtr> GetOrFetch(const tiles::TileKey& key,
                                    storage::TileStore* store,
                                    const CacheAccess& access = {});

  /// Outcome of a merged (multi-subscriber) cache-through fetch.
  struct SharedFetch {
    tiles::TilePtr tile;
    bool fetched = false;  ///< True when the backing store was queried.
  };

  /// Multi-owner cache-through fetch for the cross-session prefetch
  /// scheduler: one fill serves every subscriber. Each subscriber's intent
  /// feeds the admission frequency model (a tile many sessions predict is
  /// warm by consensus), the fill itself runs as an anonymous access whose
  /// confidence is the capped SUM of subscriber confidences — so priority
  /// admission judges the aggregate, not any single session — and the
  /// resulting L1 entry is unowned (exempt from per-session quotas: a tile
  /// serving many sessions is charged to none of them). Thread-safe.
  Result<SharedFetch> GetOrFetchShared(
      const tiles::TileKey& key, storage::TileStore* store,
      const std::vector<CacheAccess>& subscribers);

  /// One tile of a batched multi-owner fetch: the key and every scheduler
  /// subscription riding it (see GetOrFetchShared for what subscribers do).
  struct SharedBatchItem {
    tiles::TileKey key;
    std::vector<CacheAccess> subscribers;
  };

  /// Batched multi-owner cache-through fetch: the per-tile admission,
  /// frequency, and quota accounting of GetOrFetchShared for every item,
  /// but all cache misses travel in ONE TileStore::FetchBatch round trip —
  /// the backend's fixed per-query cost is paid once per batch instead of
  /// once per missing tile. Keys must be distinct. Returns one result per
  /// item, parallel to `items`; a failed slot fails alone. Each fetched
  /// tile lands once (anonymous owner, aggregate-confidence priority
  /// admission), exactly as the per-tile path would have landed it.
  /// Thread-safe; counts batches_issued/batched_tiles/fetch_rounds_saved.
  std::vector<Result<SharedFetch>> GetOrFetchSharedBatch(
      const std::vector<SharedBatchItem>& items, storage::TileStore* store);

  /// Scheduler feedback: counts `n` superseded-prediction drops into
  /// Stats().stale_drops, so one cache snapshot describes the whole shared
  /// prefetch path. Thread-safe (plain atomic; no shard invariant).
  void NoteStaleDrops(std::uint64_t n);

  /// Lookup in either tier without stats, promotion, frequency, or recency
  /// effects. Thread-safe (single shard lock).
  bool Contains(const tiles::TileKey& key) const;

  /// Drops every tile in both tiers of every shard. Counters (and the
  /// admission sketches' learned frequencies) are NOT reset. Thread-safe,
  /// but not atomic across shards with respect to concurrent inserts.
  void Clear();

  /// Resident tiles across both tiers. Thread-safe; the per-tier
  /// breakdowns below each lock shards independently, so under concurrent
  /// churn size() may not equal l1_size() + l2_size() exactly.
  std::size_t size() const;
  std::size_t l1_size() const;
  std::size_t l2_size() const;
  std::size_t l1_budget_bytes() const { return options_.l1_bytes; }
  std::size_t l2_budget_bytes() const { return options_.l2_bytes; }
  std::size_t session_quota_bytes() const { return options_.session_quota_bytes; }
  std::size_t num_shards() const { return shards_.size(); }

  /// L1 bytes currently charged to `session_id`, summed across shards.
  std::size_t SessionL1Bytes(std::uint64_t session_id) const;

  /// Consistent snapshot: all shards locked (in index order) for the read.
  SharedTileCacheStats Stats() const;

 private:
  struct L1Entry {
    tiles::TilePtr tile;
    std::size_t bytes = 0;
    /// Session whose fetch pays for this entry (0 = unowned).
    std::uint64_t owner = 0;
    /// Position in Shard::l1_order (eviction queue).
    std::list<tiles::TileKey>::iterator order_it;
    /// Position in Shard::session_l1_order[owner]; valid iff owner != 0.
    std::list<tiles::TileKey>::iterator owner_order_it;
  };

  struct L2Entry {
    /// Shared so a warm hit grabs a refcount under the shard lock and
    /// decodes outside it — never an O(blob) copy behind the stripe.
    std::shared_ptr<const std::string> blob;
    /// Preserved through the demote/promote cycle for quota accounting.
    std::uint64_t owner = 0;
    /// Position in Shard::l2_order.
    std::list<tiles::TileKey>::iterator order_it;
  };

  /// Plain counters, guarded by the owning shard's mutex. Stats() sums them
  /// under an all-shards lock so global invariants read consistently.
  struct ShardCounters {
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t encode_ns = 0;
    std::uint64_t decode_ns = 0;
    std::uint64_t admission_attempts = 0;
    std::uint64_t admission_rejects = 0;
    std::uint64_t priority_admits = 0;
    std::uint64_t quota_evictions = 0;
    std::uint64_t merged_predictions = 0;
    std::uint64_t dedup_saved_fetches = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<tiles::TileKey, L1Entry, tiles::TileKeyHash> l1;
    std::unordered_map<tiles::TileKey, L2Entry, tiles::TileKeyHash> l2;
    /// Eviction queues, front = next victim. LRU moves L1 entries to the
    /// back on every hit; FIFO leaves them where insertion put them. L2 is
    /// ordered by demotion time under either policy.
    std::list<tiles::TileKey> l1_order;
    std::list<tiles::TileKey> l2_order;
    std::size_t l1_bytes = 0;
    std::size_t l2_bytes = 0;
    /// L1 bytes charged per owning session (no entry once a session drops
    /// to zero). Sums to l1_bytes minus unowned entries' bytes.
    std::unordered_map<std::uint64_t, std::size_t> session_l1_bytes;
    /// Per-owner eviction queues mirroring l1_order's relative order
    /// (front = the session's next quota victim), so quota victim
    /// selection costs O(victims), not O(shard population).
    std::unordered_map<std::uint64_t, std::list<tiles::TileKey>>
        session_l1_order;
    /// Never null; called only under mu.
    std::unique_ptr<AdmissionPolicy> admission;
    ShardCounters counters;
  };

  /// A tile popped from L1 whose compression (and L2 insertion or eviction)
  /// happens after the shard lock is released, so codec work never blocks
  /// other threads' lookups on the shard.
  struct PendingDemotion {
    tiles::TileKey key;
    tiles::TilePtr tile;
    std::uint64_t owner = 0;
  };

  /// Why AdmitToL1 refused a tile (callers decide which counters move).
  enum class AdmitOutcome { kAdmitted, kRejectedByFilter, kRejectedOversized };

  /// Stable 64-bit key hash feeding the per-shard frequency sketch.
  static std::uint64_t KeyHash(const tiles::TileKey& key);

  Shard& ShardFor(const tiles::TileKey& key);
  const Shard& ShardFor(const tiles::TileKey& key) const;

  /// Charges `entry` (bytes + a slot at the back of the owner's eviction
  /// queue, recorded in entry.owner_order_it) to entry.owner in `shard`.
  /// No-op for the anonymous owner 0. Caller holds shard.mu.
  static void ChargeOwner(Shard& shard, const tiles::TileKey& key,
                          L1Entry& entry);

  /// Reverses ChargeOwner (the owner's byte and queue records are erased
  /// when they empty). Caller holds shard.mu.
  static void DischargeOwner(Shard& shard, const L1Entry& entry);

  /// Detaches the L1 entry at `it` (order list, byte and quota accounting)
  /// and appends its payload to `pending` for demotion. Caller holds
  /// shard.mu.
  void DetachFromL1(
      Shard& shard,
      std::unordered_map<tiles::TileKey, L1Entry, tiles::TileKeyHash>::iterator it,
      std::vector<PendingDemotion>* pending);

  /// Offers a decoded tile to a shard's L1: runs the admission filter
  /// (unless `bypass_filter` — priority admissions and L2 promotions skip
  /// it), then inserts, then pops quota and budget victims into `pending`.
  /// With `count_priority` (confidence-bypassed new-tile offers under a
  /// real filter), priority_admits is bumped iff the filter would actually
  /// have judged foreign victims. Caller holds shard.mu and has ensured
  /// `key` is in neither tier; caller must pass `pending` to
  /// FinishDemotions after releasing the lock and move its own
  /// attempt/insertion/reject counters per the outcome.
  AdmitOutcome AdmitToL1(Shard& shard, const tiles::TileKey& key,
                         tiles::TilePtr tile, const CacheAccess& access,
                         bool bypass_filter, bool count_priority,
                         std::vector<PendingDemotion>* pending);

  /// Pops L1 victims into `pending` while the shard is over its L1 budget.
  /// Caller holds shard.mu.
  void CollectL1Overflow(Shard& shard, std::vector<PendingDemotion>* pending);

  /// Pops `session`'s own oldest L1 entries into `pending` while it is over
  /// its per-shard quota, counting quota_evictions. Caller holds shard.mu.
  void CollectQuotaOverflow(Shard& shard, std::uint64_t session,
                            std::vector<PendingDemotion>* pending);

  /// Compresses pending victims (outside any lock), then re-acquires
  /// shard.mu to land them in L2 or count their eviction. A victim whose
  /// key re-entered the cache in the meantime is dropped as an eviction
  /// (the newer copy owns the residency).
  void FinishDemotions(Shard& shard, std::vector<PendingDemotion> pending);

  /// Drops one L2 victim. Caller holds shard.mu; shard.l2 must be nonempty.
  void EvictFromL2(Shard& shard);

  /// The shard-locked pre-fetch step shared by GetOrFetchShared and the
  /// batch variant: feeds every extra subscriber's intent to the admission
  /// sketch, counts merged_predictions, computes the merged anonymous
  /// access, and probes the cache. Returns the resident tile (or null).
  tiles::TilePtr PrepareSharedFetch(const tiles::TileKey& key,
                                    const std::vector<CacheAccess>& subscribers,
                                    CacheAccess* merged);

  SharedTileCacheOptions options_;
  storage::TileCodec codec_;
  /// Scheduler-fed (NoteStaleDrops): not shard-keyed, so a plain atomic
  /// rather than a per-shard counter; carries no cross-counter invariant.
  std::atomic<std::uint64_t> stale_drops_{0};
  /// Batch round-trip accounting: a batch spans shards, so these are
  /// process-wide atomics like stale_drops_ (no shard invariant).
  std::atomic<std::uint64_t> batches_issued_{0};
  std::atomic<std::uint64_t> batched_tiles_{0};
  std::atomic<std::uint64_t> fetch_rounds_saved_{0};
  std::size_t shard_l1_bytes_;
  std::size_t shard_l2_bytes_;
  std::size_t shard_quota_bytes_;  ///< 0 when quotas are disabled.
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Registers a pull-mode source exporting `cache`'s Stats() into `registry`
/// under fc.cache.* (counters for the monotone fields, gauges for resident
/// bytes). The cache must outlive the source; remove it with
/// MetricsRegistry::RemoveSource using the returned id before destroying the
/// cache. Snapshot() takes the registry mutex first, then the shard locks —
/// the recording paths never take the registry mutex, so no cycle.
std::uint64_t RegisterSharedTileCacheMetrics(telemetry::MetricsRegistry* registry,
                                             const SharedTileCache* cache);

}  // namespace fc::core

#endif  // FORECACHE_CORE_SHARED_TILE_CACHE_H_
