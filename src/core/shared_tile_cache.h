// SharedTileCache: the process-wide middleware tile cache.
//
// Paper section 6.2 leaves the multi-user setting as future work; this is
// our answer to it. Every session keeps its small private history/prefetch
// regions (CacheManager), but all sessions share one capacity-bounded tile
// cache underneath, so a tile fetched for one user is a memory hit for every
// other user exploring the same region — the DBMS sees each hot tile once,
// not once per session.
//
// Concurrency: the key space is striped across shards, each with its own
// mutex and eviction state, so sessions touching different regions never
// contend. Stats are atomics aggregated across shards.

#ifndef FORECACHE_CORE_SHARED_TILE_CACHE_H_
#define FORECACHE_CORE_SHARED_TILE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/tile_store.h"
#include "tiles/tile.h"
#include "tiles/tile_key.h"

namespace fc::core {

/// How a full shard chooses a victim. kLru evicts the least-recently-touched
/// tile; kFifo evicts in insertion order (cheaper: hits skip the bookkeeping
/// write, at the price of keeping stale-but-recently-hot tiles no longer).
enum class EvictionPolicyKind { kLru, kFifo };

struct SharedTileCacheOptions {
  std::size_t capacity = 1024;  ///< Total tiles across all shards.
  std::size_t num_shards = 16;  ///< Lock stripes; rounded up to at least 1.
  EvictionPolicyKind eviction = EvictionPolicyKind::kLru;
};

/// Point-in-time counters. hits+misses == lookups; insertions-evictions ==
/// resident tiles (modulo Clear).
struct SharedTileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double HitRate() const {
    auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Sharded, thread-safe tile cache with pluggable eviction.
class SharedTileCache {
 public:
  explicit SharedTileCache(SharedTileCacheOptions options = {});

  /// Returns the cached tile, or null. Counts a hit/miss and (for LRU)
  /// freshens the entry.
  tiles::TilePtr Lookup(const tiles::TileKey& key);

  /// Inserts (or refreshes) a tile, evicting per policy if the shard is at
  /// capacity. Null tiles are ignored.
  void Insert(const tiles::TileKey& key, tiles::TilePtr tile);

  /// Cache-through fetch: Lookup, and on a miss fetch from `store` and
  /// Insert. Concurrent misses on the same key may each fetch unless `store`
  /// is a SingleFlightTileStore (the SessionManager wires one in).
  Result<tiles::TilePtr> GetOrFetch(const tiles::TileKey& key,
                                    storage::TileStore* store);

  /// Lookup without stats or recency side effects.
  bool Contains(const tiles::TileKey& key) const;

  void Clear();

  std::size_t size() const;
  std::size_t capacity() const { return options_.capacity; }
  std::size_t num_shards() const { return shards_.size(); }

  SharedTileCacheStats Stats() const;

 private:
  struct Entry {
    tiles::TilePtr tile;
    /// Position in Shard::order (eviction queue).
    std::list<tiles::TileKey>::iterator order_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<tiles::TileKey, Entry, tiles::TileKeyHash> map;
    /// Eviction queue, front = next victim. LRU moves entries to the back on
    /// every hit; FIFO leaves them where insertion put them.
    std::list<tiles::TileKey> order;
  };

  Shard& ShardFor(const tiles::TileKey& key);
  const Shard& ShardFor(const tiles::TileKey& key) const;

  SharedTileCacheOptions options_;
  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace fc::core

#endif  // FORECACHE_CORE_SHARED_TILE_CACHE_H_
