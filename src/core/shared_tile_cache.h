// SharedTileCache: the process-wide middleware tile cache.
//
// Paper section 6.2 leaves the multi-user setting as future work; this is
// our answer to it. Every session keeps its small private history/prefetch
// regions (CacheManager), but all sessions share one byte-budgeted tile
// cache underneath, so a tile fetched for one user is a memory hit for every
// other user exploring the same region — the DBMS sees each hot tile once,
// not once per session.
//
// Memory governance is byte-accurate and two-tiered:
//  * L1 holds decoded tiles ready to serve, bounded by `l1_bytes`.
//  * L2 (optional) holds codec-compressed blobs of tiles demoted from L1,
//    bounded by `l2_bytes`. An L2 hit decodes the blob, promotes the tile
//    back into L1, and costs decode time instead of a DBMS query. Only when
//    the L2 budget is exhausted is a tile truly evicted from the process.
//
// Concurrency: the key space is striped across shards, each with its own
// mutex and per-tier eviction state, so sessions touching different regions
// never contend. Stats are atomics aggregated across shards.

#ifndef FORECACHE_CORE_SHARED_TILE_CACHE_H_
#define FORECACHE_CORE_SHARED_TILE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/tile_codec.h"
#include "storage/tile_store.h"
#include "tiles/tile.h"
#include "tiles/tile_key.h"

namespace fc::core {

/// How a full shard chooses a victim. kLru evicts the least-recently-touched
/// tile; kFifo evicts in insertion order (cheaper: hits skip the bookkeeping
/// write, at the price of keeping stale-but-recently-hot tiles no longer).
enum class EvictionPolicyKind { kLru, kFifo };

struct SharedTileCacheOptions {
  /// Byte budget of the decoded (L1) tier, summed Tile::SizeBytes.
  std::size_t l1_bytes = 64ull << 20;
  /// Byte budget of the compressed (L2) tier, summed blob bytes. 0 disables
  /// the tier: tiles demoted from L1 are evicted outright.
  std::size_t l2_bytes = 0;
  /// Lock stripes. 0 (the default) picks automatically: up to 16 shards,
  /// but never so many that a shard's L1 slice drops below a few MiB — a
  /// small budget degrades to fewer stripes, not to uncacheable slivers.
  /// Explicit values are honored as-is. Budgets are ceil-divided across
  /// shards and enforced strictly per shard: a tile larger than its
  /// shard's slice is served but never cached, so when setting this
  /// explicitly keep l1_bytes / num_shards comfortably above one tile.
  std::size_t num_shards = 0;
  EvictionPolicyKind eviction = EvictionPolicyKind::kLru;
  /// Encoding for L2 blobs. The default delta-varint quantization bounds
  /// absolute error at quant_step/2 — set encoding = kRawF64 for a lossless
  /// (but incompressible) warm tier.
  storage::TileCodecOptions codec{storage::TileEncoding::kDeltaVarint, 1e-4};
};

/// Point-in-time counters. hits == l1_hits + l2_hits; hits + misses ==
/// lookups; insertions - evictions == resident tiles across both tiers
/// (modulo Clear).
struct SharedTileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;  ///< True drops out of the process.

  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t demotions = 0;   ///< L1 -> L2 compactions.
  std::uint64_t promotions = 0;  ///< L2 -> L1 decodes (== l2_hits).

  std::uint64_t encode_ns = 0;  ///< Total time compressing demoted tiles.
  std::uint64_t decode_ns = 0;  ///< Total time decoding L2 hits.

  std::uint64_t l1_bytes_resident = 0;
  std::uint64_t l2_bytes_resident = 0;
  std::uint64_t bytes_resident = 0;  ///< Both tiers.

  double HitRate() const {
    auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Sharded, thread-safe, byte-budgeted two-tier tile cache.
class SharedTileCache {
 public:
  explicit SharedTileCache(SharedTileCacheOptions options = {});

  /// Returns the cached tile, or null. An L1 hit (for LRU) freshens the
  /// entry; an L2 hit decodes the blob and promotes it back into L1.
  tiles::TilePtr Lookup(const tiles::TileKey& key);

  /// Inserts (or refreshes) a tile into L1, demoting/evicting per policy
  /// until the byte budgets hold. Null tiles are ignored.
  void Insert(const tiles::TileKey& key, tiles::TilePtr tile);

  /// Cache-through fetch: Lookup, and on a miss fetch from `store` and
  /// Insert. Concurrent misses on the same key may each fetch unless `store`
  /// is a SingleFlightTileStore (the SessionManager wires one in).
  Result<tiles::TilePtr> GetOrFetch(const tiles::TileKey& key,
                                    storage::TileStore* store);

  /// Lookup in either tier without stats, promotion, or recency effects.
  bool Contains(const tiles::TileKey& key) const;

  void Clear();

  /// Resident tiles across both tiers.
  std::size_t size() const;
  std::size_t l1_size() const;
  std::size_t l2_size() const;
  std::size_t l1_budget_bytes() const { return options_.l1_bytes; }
  std::size_t l2_budget_bytes() const { return options_.l2_bytes; }
  std::size_t num_shards() const { return shards_.size(); }

  SharedTileCacheStats Stats() const;

 private:
  struct L1Entry {
    tiles::TilePtr tile;
    std::size_t bytes = 0;
    /// Position in Shard::l1_order (eviction queue).
    std::list<tiles::TileKey>::iterator order_it;
  };

  struct L2Entry {
    /// Shared so a warm hit grabs a refcount under the shard lock and
    /// decodes outside it — never an O(blob) copy behind the stripe.
    std::shared_ptr<const std::string> blob;
    /// Position in Shard::l2_order.
    std::list<tiles::TileKey>::iterator order_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<tiles::TileKey, L1Entry, tiles::TileKeyHash> l1;
    std::unordered_map<tiles::TileKey, L2Entry, tiles::TileKeyHash> l2;
    /// Eviction queues, front = next victim. LRU moves L1 entries to the
    /// back on every hit; FIFO leaves them where insertion put them. L2 is
    /// ordered by demotion time under either policy.
    std::list<tiles::TileKey> l1_order;
    std::list<tiles::TileKey> l2_order;
    std::size_t l1_bytes = 0;
    std::size_t l2_bytes = 0;
  };

  /// A tile popped from L1 whose compression (and L2 insertion or eviction)
  /// happens after the shard lock is released, so codec work never blocks
  /// other threads' lookups on the shard.
  struct PendingDemotion {
    tiles::TileKey key;
    tiles::TilePtr tile;
  };

  Shard& ShardFor(const tiles::TileKey& key);
  const Shard& ShardFor(const tiles::TileKey& key) const;

  /// Places a decoded tile into a shard's L1, popping victims into
  /// `pending` until the L1 byte budget holds. Returns false (caching
  /// skipped) when the tile alone exceeds the shard budget. Caller holds
  /// shard.mu and has ensured `key` is in neither tier; caller must pass
  /// `pending` to FinishDemotions after releasing the lock.
  bool AdmitToL1(Shard& shard, const tiles::TileKey& key, tiles::TilePtr tile,
                 std::vector<PendingDemotion>* pending);

  /// Pops L1 victims into `pending` while the shard is over its L1 budget.
  /// Caller holds shard.mu.
  void CollectL1Overflow(Shard& shard, std::vector<PendingDemotion>* pending);

  /// Compresses pending victims (outside any lock), then re-acquires
  /// shard.mu to land them in L2 or count their eviction. A victim whose
  /// key re-entered the cache in the meantime is dropped as an eviction
  /// (the newer copy owns the residency).
  void FinishDemotions(Shard& shard, std::vector<PendingDemotion> pending);

  /// Drops one L2 victim. Caller holds shard.mu; shard.l2 must be nonempty.
  void EvictFromL2(Shard& shard);

  SharedTileCacheOptions options_;
  storage::TileCodec codec_;
  std::size_t shard_l1_bytes_;
  std::size_t shard_l2_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> l1_hits_{0};
  std::atomic<std::uint64_t> l2_hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> demotions_{0};
  std::atomic<std::uint64_t> encode_ns_{0};
  std::atomic<std::uint64_t> decode_ns_{0};
  std::atomic<std::uint64_t> l1_bytes_resident_{0};
  std::atomic<std::uint64_t> l2_bytes_resident_{0};
};

}  // namespace fc::core

#endif  // FORECACHE_CORE_SHARED_TILE_CACHE_H_
