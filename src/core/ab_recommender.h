// Action-Based (AB) recommender: an n-th-order Kneser-Ney Markov chain over
// the user's recent moves (paper section 4.3.2, Algorithm 2).

#ifndef FORECACHE_CORE_AB_RECOMMENDER_H_
#define FORECACHE_CORE_AB_RECOMMENDER_H_

#include <memory>

#include "core/recommender.h"
#include "markov/markov_chain.h"

namespace fc::core {

struct AbRecommenderOptions {
  /// History length n: states are length-n move sequences. The paper found
  /// n = 3 ("Markov3") the sweet spot (section 5.4.2).
  std::size_t history_length = 3;
  double kneser_ney_discount = 0.75;
};

class AbRecommender : public Recommender {
 public:
  /// InvalidArgument propagated from the underlying chain on bad options.
  static Result<AbRecommender> Make(AbRecommenderOptions options = {});

  std::string_view name() const override { return "ab"; }

  /// Algorithm 2: accumulates transition frequencies from every trace's
  /// move sequence, then applies Kneser-Ney smoothing.
  Status Train(const std::vector<Trace>& traces) override;

  /// Ranks candidates by the smoothed probability of the move that reaches
  /// them from ctx.request.tile, given the recent move history.
  Result<RankedTiles> Recommend(const PredictionContext& ctx) const override;

  /// P(move | recent history) — exposed for tests and ablations.
  double MoveProbability(const SessionHistory& history, Move move) const;

  const markov::MarkovChain& chain() const { return *chain_; }

 private:
  explicit AbRecommender(markov::MarkovChain chain);

  std::shared_ptr<markov::MarkovChain> chain_;  // shared: recommender is copyable
};

}  // namespace fc::core

#endif  // FORECACHE_CORE_AB_RECOMMENDER_H_
