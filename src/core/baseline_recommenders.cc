#include "core/baseline_recommenders.h"

#include <algorithm>
#include <limits>
#include <map>

namespace fc::core {

namespace {

// Sorts candidates by descending score with stable index tiebreak.
RankedTiles RankByScore(const std::vector<tiles::TileKey>& candidates,
                        const std::vector<double>& scores) {
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  RankedTiles out;
  out.reserve(candidates.size());
  for (std::size_t i : order) out.push_back(candidates[i]);
  return out;
}

}  // namespace

std::vector<double> MomentumRecommender::Scores(const PredictionContext& ctx) {
  constexpr double kRepeatProbability = 0.9;
  constexpr double kOtherProbability = 0.0125;
  std::vector<double> scores(ctx.candidates.size(), kOtherProbability);
  if (!ctx.request.move.has_value() || ctx.spec == nullptr) return scores;
  auto repeat_target = ApplyMove(ctx.request.tile, *ctx.request.move, *ctx.spec);
  if (!repeat_target.has_value()) return scores;
  for (std::size_t i = 0; i < ctx.candidates.size(); ++i) {
    if (ctx.candidates[i] == *repeat_target) scores[i] = kRepeatProbability;
  }
  return scores;
}

Result<RankedTiles> MomentumRecommender::Recommend(
    const PredictionContext& ctx) const {
  if (ctx.spec == nullptr) {
    return Status::InvalidArgument("momentum: prediction context missing spec");
  }
  return RankByScore(ctx.candidates, Scores(ctx));
}

HotspotRecommender::HotspotRecommender(HotspotRecommenderOptions options)
    : options_(options) {}

Status HotspotRecommender::Train(const std::vector<Trace>& traces) {
  std::map<tiles::TileKey, std::size_t> counts;
  for (const auto& trace : traces) {
    for (const auto& rec : trace.records) {
      ++counts[rec.request.tile];
    }
  }
  std::vector<std::pair<tiles::TileKey, std::size_t>> ranked(counts.begin(),
                                                             counts.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  hotspots_.clear();
  for (std::size_t i = 0; i < ranked.size() && i < options_.num_hotspots; ++i) {
    hotspots_.push_back(ranked[i].first);
  }
  return Status::OK();
}

Result<RankedTiles> HotspotRecommender::Recommend(const PredictionContext& ctx) const {
  if (ctx.spec == nullptr) {
    return Status::InvalidArgument("hotspot: prediction context missing spec");
  }
  auto scores = MomentumRecommender::Scores(ctx);

  // Nearest hotspot to the current tile.
  const tiles::TileKey* nearest = nullptr;
  std::int64_t nearest_dist = std::numeric_limits<std::int64_t>::max();
  for (const auto& h : hotspots_) {
    std::int64_t d = tiles::TileKey::ManhattanDistance(ctx.request.tile, h);
    if (d < nearest_dist) {
      nearest_dist = d;
      nearest = &h;
    }
  }

  // Far from every hotspot: pure Momentum behavior.
  if (nearest != nullptr && nearest_dist <= options_.nearby_distance) {
    for (std::size_t i = 0; i < ctx.candidates.size(); ++i) {
      std::int64_t cand_dist =
          tiles::TileKey::ManhattanDistance(ctx.candidates[i], *nearest);
      if (cand_dist < nearest_dist) {
        scores[i] += options_.boost;  // approaches the hotspot: rank higher
      } else if (cand_dist > nearest_dist) {
        scores[i] -= options_.boost * 0.01;  // walks away: rank lower
      }
    }
  }
  return RankByScore(ctx.candidates, scores);
}

}  // namespace fc::core
