#include "core/recommender.h"

#include <set>

namespace fc::core {

Status Recommender::Train(const std::vector<Trace>&) { return Status::OK(); }

std::vector<tiles::TileKey> CandidateTiles(const tiles::TileKey& from,
                                           const tiles::PyramidSpec& spec, int d) {
  std::vector<tiles::TileKey> result;
  if (d <= 0) return result;
  std::set<tiles::TileKey> seen;
  seen.insert(from);
  // BFS over the move graph to depth d; at d=1 this yields move-enum order.
  std::vector<tiles::TileKey> frontier{from};
  for (int depth = 0; depth < d; ++depth) {
    std::vector<tiles::TileKey> next;
    for (const auto& key : frontier) {
      for (Move m : AllMoves()) {
        auto to = ApplyMove(key, m, spec);
        if (to.has_value() && seen.insert(*to).second) {
          next.push_back(*to);
          result.push_back(*to);
        }
      }
    }
    frontier = std::move(next);
  }
  return result;
}

}  // namespace fc::core
