#include "core/allocation.h"

#include <algorithm>
#include <cmath>

namespace fc::core {

Allocation PhaseAllocationStrategy::Allocate(AnalysisPhase phase,
                                             std::size_t k) const {
  Allocation a;
  switch (phase) {
    case AnalysisPhase::kNavigation:
      a.ab_slots = k;
      a.sb_slots = 0;
      a.ab_first = true;
      break;
    case AnalysisPhase::kSensemaking:
      a.ab_slots = 0;
      a.sb_slots = k;
      a.ab_first = false;
      break;
    case AnalysisPhase::kForaging:
      a.ab_slots = (k + 1) / 2;  // equal split, AB takes the odd slot
      a.sb_slots = k / 2;
      a.ab_first = true;
      break;
  }
  return a;
}

Allocation HybridAllocationStrategy::Allocate(AnalysisPhase phase,
                                              std::size_t k) const {
  Allocation a;
  if (phase == AnalysisPhase::kSensemaking) {
    a.ab_slots = 0;
    a.sb_slots = k;
    a.ab_first = false;
    return a;
  }
  a.ab_slots = std::min(ab_head_, k);
  a.sb_slots = k - a.ab_slots;
  a.ab_first = true;
  return a;
}

FixedAllocationStrategy::FixedAllocationStrategy(std::string_view name,
                                                 double ab_fraction)
    : name_(name), ab_fraction_(std::clamp(ab_fraction, 0.0, 1.0)) {}

Allocation FixedAllocationStrategy::Allocate(AnalysisPhase, std::size_t k) const {
  Allocation a;
  a.ab_slots = static_cast<std::size_t>(
      std::llround(ab_fraction_ * static_cast<double>(k)));
  a.ab_slots = std::min(a.ab_slots, k);
  a.sb_slots = k - a.ab_slots;
  a.ab_first = ab_fraction_ >= 0.5;
  return a;
}

}  // namespace fc::core
