// Baseline prefetchers from the literature (paper section 5.2.3, after
// Doshi et al.): Momentum and Hotspot. ForeCache is evaluated against both.

#ifndef FORECACHE_CORE_BASELINE_RECOMMENDERS_H_
#define FORECACHE_CORE_BASELINE_RECOMMENDERS_H_

#include <vector>

#include "core/recommender.h"

namespace fc::core {

/// Momentum: "the user's next move will be the same as her previous move."
/// The tile matching the previous move gets probability 0.9; the eight other
/// candidates get 0.0125 each (a first-order Markov chain).
class MomentumRecommender : public Recommender {
 public:
  MomentumRecommender() = default;

  std::string_view name() const override { return "momentum"; }
  Result<RankedTiles> Recommend(const PredictionContext& ctx) const override;

  /// The momentum probability assigned to each candidate (for Hotspot reuse).
  static std::vector<double> Scores(const PredictionContext& ctx);
};

struct HotspotRecommenderOptions {
  std::size_t num_hotspots = 8;      ///< Top-N most requested training tiles.
  std::int64_t nearby_distance = 4;  ///< Manhattan radius that activates boosts.
  double boost = 1.0;                ///< Added to candidates approaching a hotspot.
};

/// Hotspot: Momentum plus awareness of popular tiles. Near a hotspot,
/// candidates that bring the user closer to it rank higher; far from all
/// hotspots it behaves exactly like Momentum.
class HotspotRecommender : public Recommender {
 public:
  explicit HotspotRecommender(HotspotRecommenderOptions options = {});

  std::string_view name() const override { return "hotspot"; }

  /// Counts requests per tile across traces and keeps the most-requested
  /// tiles as hotspots ("training took less than one second").
  Status Train(const std::vector<Trace>& traces) override;

  Result<RankedTiles> Recommend(const PredictionContext& ctx) const override;

  const std::vector<tiles::TileKey>& hotspots() const { return hotspots_; }

 private:
  HotspotRecommenderOptions options_;
  std::vector<tiles::TileKey> hotspots_;
};

}  // namespace fc::core

#endif  // FORECACHE_CORE_BASELINE_RECOMMENDERS_H_
