#include "core/ab_recommender.h"

#include <algorithm>

namespace fc::core {

AbRecommender::AbRecommender(markov::MarkovChain chain)
    : chain_(std::make_shared<markov::MarkovChain>(std::move(chain))) {}

Result<AbRecommender> AbRecommender::Make(AbRecommenderOptions options) {
  FC_ASSIGN_OR_RETURN(auto chain,
                      markov::MarkovChain::Make(kNumMoves, options.history_length,
                                                options.kneser_ney_discount));
  return AbRecommender(std::move(chain));
}

Status AbRecommender::Train(const std::vector<Trace>& traces) {
  for (const auto& trace : traces) {
    FC_RETURN_IF_ERROR(chain_->Observe(trace.MoveSymbols()));
  }
  chain_->Finalize();
  return Status::OK();
}

double AbRecommender::MoveProbability(const SessionHistory& history,
                                      Move move) const {
  return chain_->TransitionProbability(history.MoveSymbols(),
                                       static_cast<int>(move));
}

Result<RankedTiles> AbRecommender::Recommend(const PredictionContext& ctx) const {
  if (ctx.history == nullptr || ctx.spec == nullptr) {
    return Status::InvalidArgument("ab: prediction context missing history/spec");
  }
  auto recent = ctx.history->MoveSymbols();
  auto dist = chain_->NextMoveDistribution(recent);

  // Score each candidate by the probability of the move reaching it. At
  // d > 1 the first hop dominates; unreachable-in-one candidates get the
  // probability of the best first hop toward them (approximated by 0 — they
  // sort after all one-hop candidates, keeping the permutation complete).
  struct Scored {
    tiles::TileKey key;
    double score;
    int tiebreak;
  };
  std::vector<Scored> scored;
  scored.reserve(ctx.candidates.size());
  for (std::size_t i = 0; i < ctx.candidates.size(); ++i) {
    const auto& cand = ctx.candidates[i];
    double score = 0.0;
    auto move = MoveBetween(ctx.request.tile, cand);
    if (move.has_value()) {
      score = dist[static_cast<std::size_t>(*move)];
    }
    scored.push_back({cand, score, static_cast<int>(i)});
  }
  std::stable_sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.tiebreak < b.tiebreak;
  });
  RankedTiles out;
  out.reserve(scored.size());
  for (const auto& s : scored) out.push_back(s.key);
  return out;
}

}  // namespace fc::core
