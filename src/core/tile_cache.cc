#include "core/tile_cache.h"

namespace fc::core {

LruTileCache::LruTileCache(std::size_t max_bytes)
    : max_bytes_(max_bytes == 0 ? 1 : max_bytes) {}

void LruTileCache::Put(const tiles::TileKey& key, tiles::TilePtr tile) {
  std::size_t bytes = tile == nullptr ? 0 : tile->SizeBytes();
  auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_resident_ = bytes_resident_ - it->second->bytes + bytes;
    it->second->tile = std::move(tile);
    it->second->bytes = bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(tile), bytes});
    map_[key] = lru_.begin();
    bytes_resident_ += bytes;
  }
  // Never evict the entry just touched: an oversized tile is held alone
  // rather than thrashing the region empty.
  while (bytes_resident_ > max_bytes_ && lru_.size() > 1) {
    bytes_resident_ -= lru_.back().bytes;
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

Result<tiles::TilePtr> LruTileCache::Get(const tiles::TileKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return Status::NotFound("cache miss: " + key.ToString());
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->tile;
}

tiles::TilePtr LruTileCache::Peek(const tiles::TileKey& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : it->second->tile;
}

bool LruTileCache::Contains(const tiles::TileKey& key) const {
  return map_.count(key) > 0;
}

void LruTileCache::Erase(const tiles::TileKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  bytes_resident_ -= it->second->bytes;
  lru_.erase(it->second);
  map_.erase(it);
}

void LruTileCache::Clear() {
  lru_.clear();
  map_.clear();
  bytes_resident_ = 0;
}

double LruTileCache::HitRate() const {
  std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

std::vector<tiles::TileKey> LruTileCache::KeysByRecency() const {
  std::vector<tiles::TileKey> keys;
  keys.reserve(lru_.size());
  for (const auto& e : lru_) keys.push_back(e.key);
  return keys;
}

}  // namespace fc::core
