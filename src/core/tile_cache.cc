#include "core/tile_cache.h"

namespace fc::core {

LruTileCache::LruTileCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void LruTileCache::Put(const tiles::TileKey& key, tiles::TilePtr tile) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->tile = std::move(tile);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(tile)});
  map_[key] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

Result<tiles::TilePtr> LruTileCache::Get(const tiles::TileKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return Status::NotFound("cache miss: " + key.ToString());
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->tile;
}

bool LruTileCache::Contains(const tiles::TileKey& key) const {
  return map_.count(key) > 0;
}

void LruTileCache::Erase(const tiles::TileKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void LruTileCache::Clear() {
  lru_.clear();
  map_.clear();
}

double LruTileCache::HitRate() const {
  std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

std::vector<tiles::TileKey> LruTileCache::KeysByRecency() const {
  std::vector<tiles::TileKey> keys;
  keys.reserve(lru_.size());
  for (const auto& e : lru_) keys.push_back(e.key);
  return keys;
}

}  // namespace fc::core
