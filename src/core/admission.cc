#include "core/admission.h"

#include <algorithm>

#include "common/rng.h"

namespace fc::core {

namespace {

std::size_t CeilPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Per-row seeds: arbitrary odd constants mixed into the key hash so the
/// four rows index independently.
constexpr std::uint64_t kRowSeeds[4] = {
    0x9e3779b97f4a7c15ull, 0xbf58476d1ce4e5b9ull, 0x94d049bb133111ebull,
    0xd6e8feb86659fd93ull};

}  // namespace

FrequencySketch::FrequencySketch(std::size_t counters, std::uint64_t halve_every)
    : counters_(CeilPow2(std::max<std::size_t>(counters, 16))),
      halve_every_(halve_every == 0 ? 8ull * counters_ : halve_every),
      words_(kRows * (counters_ / 16), 0) {}

std::size_t FrequencySketch::IndexFor(int row, std::uint64_t hash) const {
  return static_cast<std::size_t>(HashSeed(hash ^ kRowSeeds[row])) &
         (counters_ - 1);
}

std::uint32_t FrequencySketch::CounterAt(int row, std::size_t index) const {
  const std::uint64_t word =
      words_[static_cast<std::size_t>(row) * (counters_ / 16) + index / 16];
  return static_cast<std::uint32_t>((word >> ((index % 16) * 4)) & 0xFull);
}

void FrequencySketch::Record(std::uint64_t hash) {
  if (++window_accesses_ > halve_every_) {
    Halve();
    window_accesses_ = 1;  // this access opens the new window
  }
  ++total_accesses_;
  for (int row = 0; row < kRows; ++row) {
    const std::size_t index = IndexFor(row, hash);
    std::uint64_t& word =
        words_[static_cast<std::size_t>(row) * (counters_ / 16) + index / 16];
    const unsigned shift = (index % 16) * 4;
    if (((word >> shift) & 0xFull) < kMaxCount) {
      word += 1ull << shift;
    }
  }
}

std::uint32_t FrequencySketch::Estimate(std::uint64_t hash) const {
  std::uint32_t estimate = kMaxCount;
  for (int row = 0; row < kRows; ++row) {
    estimate = std::min(estimate, CounterAt(row, IndexFor(row, hash)));
  }
  return estimate;
}

void FrequencySketch::Halve() {
  // Every 4-bit counter shifts right by one: mask keeps each nibble's shift
  // from borrowing its neighbor's low bit.
  for (auto& word : words_) {
    word = (word >> 1) & 0x7777777777777777ull;
  }
  ++halvings_;
}

bool TinyLfuAdmissionPolicy::ShouldAdmit(
    std::uint64_t candidate_hash, const std::vector<std::uint64_t>& victim_hashes) {
  if (victim_hashes.empty()) return true;  // free space: nothing displaced
  const std::uint32_t candidate = sketch_.Estimate(candidate_hash);
  for (std::uint64_t victim : victim_hashes) {
    if (candidate <= sketch_.Estimate(victim)) return false;
  }
  return true;
}

std::unique_ptr<AdmissionPolicy> MakeAdmissionPolicy(
    const AdmissionOptions& options) {
  switch (options.policy) {
    case AdmissionPolicyKind::kTinyLfu:
      return std::make_unique<TinyLfuAdmissionPolicy>(
          options.sketch_counters, options.sketch_halve_every);
    case AdmissionPolicyKind::kAdmitAll:
      break;
  }
  return std::make_unique<AdmitAllPolicy>();
}

}  // namespace fc::core
