// Analysis-phase classifier: the top level of the two-level prediction
// engine (paper section 4.2.2). A multi-class RBF SVM over the six features
// of paper Table 1, trained on labeled traces.

#ifndef FORECACHE_CORE_PHASE_CLASSIFIER_H_
#define FORECACHE_CORE_PHASE_CLASSIFIER_H_

#include <string_view>
#include <vector>

#include "core/request.h"
#include "svm/scaler.h"
#include "svm/svm.h"

namespace fc::core {

/// The six input features of paper Table 1.
enum class PhaseFeature : int {
  kX = 0,            ///< X position (in tiles).
  kY = 1,            ///< Y position (in tiles).
  kZoomLevel = 2,    ///< Zoom level id.
  kPanFlag = 3,      ///< 1 if the user panned, else 0.
  kZoomInFlag = 4,   ///< 1 if the user zoomed in, else 0.
  kZoomOutFlag = 5,  ///< 1 if the user zoomed out, else 0.
};

inline constexpr std::size_t kNumPhaseFeatures = 6;

std::string_view PhaseFeatureToString(PhaseFeature feature);

/// The feature vector for one request (the flags describe the move that
/// produced the request; a session-opening request has all flags 0).
std::vector<double> ExtractPhaseFeatures(const TileRequest& request);

struct PhaseClassifierOptions {
  svm::SvmOptions svm;  ///< Defaults to an RBF kernel (the paper's choice).

  /// Restricts training/prediction to a feature subset; empty = all six.
  /// Used to reproduce Table 1's per-feature accuracies.
  std::vector<PhaseFeature> feature_subset;

  /// Deterministically subsamples training rows above this count (0 = off).
  /// LOOCV over 54 traces trains many SVMs; subsampling bounds the cost.
  std::size_t max_training_rows = 0;

  std::uint64_t seed = 29;
};

class PhaseClassifier {
 public:
  PhaseClassifier() = default;

  /// Trains scaler + one-vs-one SVM on the labeled records of `traces`.
  static Result<PhaseClassifier> Train(const std::vector<Trace>& traces,
                                       PhaseClassifierOptions options = {});

  /// Predicts the phase for one request.
  AnalysisPhase Predict(const TileRequest& request) const;

  /// Fraction of records in `traces` whose label matches the prediction.
  double EvaluateAccuracy(const std::vector<Trace>& traces) const;

  const svm::MulticlassSvm& svm() const { return svm_; }

 private:
  std::vector<double> ProjectFeatures(const std::vector<double>& full) const;

  PhaseClassifierOptions options_;
  svm::FeatureScaler scaler_;
  svm::MulticlassSvm svm_;
};

}  // namespace fc::core

#endif  // FORECACHE_CORE_PHASE_CLASSIFIER_H_
