// PrefetchScheduler: the process-wide, cross-session prefetch queue.
//
// The paper's client prefetches its own ranked tile list; one process
// serving many concurrent users cannot afford that — N sessions predicting
// the same tile would schedule N independent fills, and executor threads
// burn on duplicate, low-aggregate-value work. Following the server-side
// scheduling argument of Continuous Prefetch (Khameleon) and Kyrix's
// centralized tile serving, sessions publish their ranked predictions here
// instead of submitting fills directly, and one shared priority queue
// decides what the executor fetches next:
//
//  * One pending entry per tile key. A prediction for a tile already
//    pending MERGES into the existing entry (counted in
//    merged_predictions) instead of queueing a second fill.
//  * Priority = (sum of subscribed confidences) x (number of distinct
//    subscribed sessions), re-scored on every merge and every decay — the
//    tiles the most users are most certain to need next are fetched first.
//  * Generation-based invalidation: each Publish supersedes the session's
//    previous publication, so predictions from a request the user has
//    already moved past decay out of the queue (stale_drops) instead of
//    blocking it.
//  * A completed fill lands ONCE in the shared cache — with the AGGREGATE
//    confidence driving priority admission and every subscriber's interest
//    feeding the admission frequency sketch — and is then delivered to
//    every still-subscribed session's private prefetch region.
//  * Batched backend I/O (storage/batch_fetch.h): a drain round pops the
//    TOP-K pending entries — the scheduler sees the global priority order,
//    so batch formation happens here — and fetches them in ONE backend
//    round trip, amortizing the DBMS's fixed per-query overhead across the
//    batch. The default profile (1 tile/round trip) is the per-tile drain.
//  * Deadline-aware draining (opt-in, PrefetchSchedulerOptions::
//    deadline_aware): pure utility order starves a session whose
//    predictions are persistently outvoted — its low-aggregate entries sit
//    behind every merged hot entry for the whole saturation episode. The
//    paper models user think time explicitly: a fill that lands after the
//    session's next move is worthless no matter how cheap it was. So each
//    Publish may carry the session's estimated think time; the entry's
//    deadline is the earliest deadline of its live subscriptions, and the
//    drain serves entries earliest-deadline-first among those whose utility
//    clears an absolute bar (deadline_utility_bar), topping the batch up in
//    plain utility order afterwards. This bounds per-session staleness
//    while keeping the dedup win; deadline_promotions / deadline_misses
//    count entries served ahead of higher-utility work and entries popped
//    past their deadline.
//  * Per-session fairness shares (opt-in, PrefetchSchedulerOptions::
//    fairness_share): deadlines bound staleness per ENTRY, not per
//    session — a session whose entries sit below the utility bar, or that
//    loses every tie at it, can still be starved for a whole saturation
//    episode. Following Khameleon's argument that the server must allocate
//    the shared fill channel across SESSIONS, a weighted deficit-round-
//    robin layer reserves a configurable fraction of each drain round's
//    slots: every drained fill charges the deficit counters of the
//    sessions it serves, sessions with pending work accrue credit in
//    proportion to their weight (SetSessionWeight, default 1), and the
//    reserved slice serves the most-underserved session's best pending
//    entry. The slice runs AFTER the earliest-deadline pass and BEFORE the
//    utility backfill, so EDF urgency, the fairness floor, and utility
//    throughput compose in that order. Defaults (fairness_share = 0) keep
//    the drain order bit-identical to the share-free scheduler.
//
// Accounting invariant (drained queue, see Stats()):
//   fills_issued + dedup_saved_fetches == predictions_published.
//
// Thread-safety: all methods are thread-safe. One mutex guards the queue,
// the session registry, and the counters; DBMS fetches and region
// deliveries run outside it. Lock order is scheduler mutex -> cache shard
// mutex; the scheduler never calls back into itself from a delivery.

#ifndef FORECACHE_CORE_PREFETCH_SCHEDULER_H_
#define FORECACHE_CORE_PREFETCH_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/executor.h"
#include "common/metrics.h"
#include "common/sim_clock.h"
#include "common/trace.h"
#include "core/shared_tile_cache.h"
#include "storage/batch_fetch.h"
#include "storage/tile_store.h"
#include "tiles/tile_key.h"

namespace fc::core {

/// One ranked prediction a session publishes: the tile and the engine's
/// confidence that this session will request it next.
struct PrefetchCandidate {
  tiles::TileKey key;
  double confidence = 0.0;
};

struct PrefetchSchedulerOptions {
  /// Bound on concurrently executing fills (each fill occupies one executor
  /// task while it fetches). Queue pressure beyond this waits in priority
  /// order rather than fanning out across every executor thread.
  std::size_t max_in_flight = 4;

  /// Batched backend I/O (see storage/batch_fetch.h): each drain round pops
  /// up to batch.max_batch_tiles of the top pending entries into ONE
  /// backend round trip (TileStore::FetchBatch through
  /// SharedTileCache::GetOrFetchSharedBatch). The default profile
  /// (max_batch_tiles = 1) reproduces the per-tile drain exactly.
  storage::BatchProfile batch;

  /// Time source for batch.max_linger_ms (aging pending entries) and for
  /// deadline arithmetic: the replay harness's SimClock, or a SteadyClock
  /// (common/clock.h) in real deployments — the scheduler only ever READS
  /// it. Null disables lingering (partial batches always drain
  /// immediately) and deadline scheduling.
  const Clock* clock = nullptr;

  /// Nominal decoded tile payload bytes, for converting
  /// batch.max_batch_bytes into a tile cap (TilePyramid::NominalTileBytes
  /// is the right source). 0 derives a single-attribute estimate from the
  /// store's pyramid spec.
  std::size_t nominal_tile_bytes = 0;

  /// Deadline-aware drain order (requires `clock`; ignored without one).
  /// Off (the default), drains are pure utility order — bit-identical to
  /// the deadline-free scheduler. On, entries whose priority clears
  /// deadline_utility_bar drain earliest-deadline-first; the remaining
  /// batch budget backfills in utility order (which also covers entries
  /// published without a think-time estimate).
  bool deadline_aware = false;

  /// ABSOLUTE priority floor for deadline promotion. An entry below the
  /// bar never jumps the utility order on deadline grounds (it still
  /// drains via the utility backfill). The default 0.0 makes every
  /// deadline-stamped entry eligible — deliberately: a relative
  /// (fraction-of-top) bar would re-starve exactly the outvoted sessions
  /// this mode exists to protect.
  double deadline_utility_bar = 0.0;

  /// Fallback think time (ms) for publishes that carry none (think_ms <=
  /// 0) while deadline_aware is on. 0 leaves such entries deadline-free:
  /// they drain only through the utility backfill.
  double default_think_ms = 0.0;

  /// Fraction of each drain round's slots reserved for the per-session
  /// weighted deficit-round-robin slice, in [0, 1] (clamped). 0 (the
  /// default) disables the fairness layer entirely — drain order stays
  /// bit-identical to the share-free scheduler, and SetSessionWeight calls
  /// are recorded but never consulted.
  ///
  /// With a share s, a registered session of weight w (default 1) that
  /// keeps pending work queued is guaranteed a long-run fraction of at
  /// least s x w / W of drained fills, where W is the total weight of
  /// sessions with pending work — regardless of how badly its entries are
  /// outvoted in utility order or gated below deadline_utility_bar.
  /// Sub-slot reservations accumulate across rounds (a share of 0.25 at
  /// batch size 1 grants every fourth slot), so the floor holds at every
  /// batch size. EDF urgency still runs first: a round whose budget the
  /// deadline pass consumed carries its reservation over to the next.
  double fairness_share = 0.0;

  /// Telemetry (optional, zero hot-path cost when null). With `metrics`,
  /// each drain round records fc.prefetch.batch_size / queue_wait_us /
  /// fill_latency_us histograms (queue wait needs `clock`). With `trace`,
  /// a drain round whose batch carries a sampled subscription records one
  /// prefetch.fetch span per such entry, stamped on `clock`'s time base
  /// via the sink. Both must outlive the scheduler.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::TraceSink* trace = nullptr;
};

/// Point-in-time counters. Every published prediction retires exactly once:
/// as the single fetch its merged entry issued (fills_issued), or without a
/// fetch of its own (dedup_saved_fetches) — because it merged into another
/// prediction's fill, the tile was already resident, or it went stale
/// first. Hence, once the queue is drained:
///   fills_issued + dedup_saved_fetches == predictions_published.
struct PrefetchSchedulerStats {
  std::uint64_t predictions_published = 0;  ///< (tile, session) publishes accepted.
  std::uint64_t merged_predictions = 0;  ///< Publishes that merged into a pending entry.
  std::uint64_t already_resident = 0;  ///< Retired at publish: tile was cached.
  std::uint64_t fills_issued = 0;      ///< Backing-store fetches performed.
  std::uint64_t fill_failures = 0;     ///< Issued fetches that errored.
  std::uint64_t dedup_saved_fetches = 0;  ///< Predictions retired without their own fetch.
  std::uint64_t stale_drops = 0;  ///< Subscriptions invalidated before their fill (subset of dedup_saved_fetches).
  std::uint64_t deliveries = 0;   ///< Tiles landed in session prefetch regions.
  std::uint64_t max_queue_depth = 0;  ///< High-water mark of pending entries.

  /// Batched backend I/O. Drain rounds that reached the backend (one
  /// FetchBatch round trip each); fills_issued / fetch_batches is the
  /// amortization factor.
  std::uint64_t fetch_batches = 0;
  /// Fills that rode a round trip carrying more than one tile.
  std::uint64_t batched_fills = 0;
  /// Drain rounds that deferred a partial batch to linger for more keys.
  std::uint64_t batch_deferrals = 0;
  /// Entries that rode a batch ahead of strictly higher-priority entries
  /// because they completed a spatial run (bounded by
  /// BatchProfile::adjacency_priority_window; see FetchBatcher::
  /// SelectAdjacent). 0 whenever the window is 0.
  std::uint64_t adjacency_reorders = 0;

  /// Deadline-aware drains (0 whenever deadline_aware is off). Entries
  /// popped by the earliest-deadline-first pass ahead of a strictly
  /// higher-priority pending entry — the anti-starvation promotions.
  std::uint64_t deadline_promotions = 0;
  /// Entries whose deadline had already passed when the EDF pass reached
  /// them: the subscribing user statistically moved on, so the entry is
  /// demoted to plain utility order (it still drains — or supersession
  /// sheds it) instead of consuming the urgent-drain budget.
  std::uint64_t deadline_misses = 0;

  /// Per-session fairness shares (0 whenever fairness_share is 0).
  /// Entries drained through the deficit-round-robin slice.
  std::uint64_t fairness_picks = 0;
  /// The subset of fairness_picks that jumped a strictly higher-priority
  /// pending entry — slots the starved session would not have won on
  /// utility (or deadline) grounds.
  std::uint64_t fairness_promotions = 0;
};

/// A pending queue entry, as reported by SnapshotQueue().
struct PrefetchQueueEntry {
  tiles::TileKey key;
  double priority = 0.0;
  double aggregate_confidence = 0.0;
  std::size_t sessions = 0;  ///< Distinct subscribed sessions.
  /// Virtual time the entry first became pending; negative
  /// (kNoEnqueueStamp) when published without a clock. Preserved across
  /// merges and adjacency re-pushes.
  double enqueue_ms = -1.0;
  /// Earliest subscription deadline (virtual ms); +infinity when no live
  /// subscription carries one. The default matches that documented
  /// "no deadline" value — a default-constructed entry must never read as
  /// already expired (deadline 0.0 is the epoch, i.e. the distant past).
  double deadline_ms = std::numeric_limits<double>::infinity();
};

/// Process-wide prefetch queue merging overlapping predictions across
/// sessions. One instance serves every session of a SessionManager.
class PrefetchScheduler {
 public:
  /// Entry::enqueue_ms / PrefetchQueueEntry::enqueue_ms value for entries
  /// published while no clock was wired. A sentinel, NOT virtual time 0:
  /// the linger scan must skip these instead of treating them as
  /// infinitely old (which would force-flush every partial batch once a
  /// clock appears).
  static constexpr double kNoEnqueueStamp = -1.0;

  /// Subscription/entry deadline for publishes without a think-time
  /// estimate: never urgent.
  static constexpr double kNoDeadline =
      std::numeric_limits<double>::infinity();

  /// Called when a fill completes for a still-current subscription: the
  /// tile, and the publish generation the subscription was made under (the
  /// receiver re-checks it against its own current fill — see
  /// CacheManager::AcceptPrefetched). Invoked WITHOUT the scheduler lock,
  /// possibly from an executor thread; must not call back into the
  /// scheduler.
  using Delivery = std::function<void(
      const tiles::TileKey& key, const tiles::TilePtr& tile,
      std::uint64_t generation)>;

  /// `store` is the fetch path for fills (the SessionManager passes its
  /// single-flight-wrapped store) and must outlive the scheduler, as must
  /// `executor` and `shared` when given.
  ///
  /// `executor` null puts the scheduler in PULL MODE: Publish only queues,
  /// and the owner drives fills via DrainOne() — deterministic, used by
  /// tests and single-threaded embeddings. WaitForSession/Drain must not be
  /// used to wait out a non-empty queue in pull mode (nothing would drain
  /// it). `shared` null skips the shared-cache landing: fills fetch from
  /// `store` and deliver to subscribers only.
  PrefetchScheduler(storage::TileStore* store, Executor* executor,
                    SharedTileCache* shared,
                    PrefetchSchedulerOptions options = {});

  /// Shuts down: retires all pending work as stale and joins in-flight
  /// fills (registered sessions need not be unregistered first).
  ~PrefetchScheduler();

  PrefetchScheduler(const PrefetchScheduler&) = delete;
  PrefetchScheduler& operator=(const PrefetchScheduler&) = delete;

  /// Registers a session and its delivery callback. `session_id` is the
  /// caller's stable nonzero identity (the SessionManager's numeric session
  /// id); 0 — or a collision with a registered id — auto-assigns a fresh
  /// one. Returns the effective id, which all other per-session calls take.
  std::uint64_t RegisterSession(std::uint64_t session_id, Delivery deliver);

  /// Drops the session's pending subscriptions (counted as stale), waits
  /// for any in-flight deliveries to it to settle, and forgets it. After
  /// return its Delivery is never invoked again. No-op for unknown ids.
  void UnregisterSession(std::uint64_t session_id);

  /// Sets the session's fairness weight (default 1.0 at registration).
  /// Consulted only while fairness_share > 0: a session of weight w is
  /// guaranteed fairness_share x w / W of drain slots while it has pending
  /// work (W = total weight of such sessions). Non-positive weights and
  /// unknown ids are ignored. Safe to call at any time; takes effect from
  /// the next drain round's accrual.
  void SetSessionWeight(std::uint64_t session_id, double weight);

  /// Publishes `session_id`'s ranked predictions for request `generation`,
  /// superseding its previous publication (whose unfilled subscriptions
  /// decay out of the queue as stale_drops). Generations must be monotonic
  /// per session — the ForeCacheServer passes its per-request counter.
  /// Predictions already resident in the shared cache are delivered
  /// immediately on the calling thread and never enqueued.
  ///
  /// `think_ms` is the session's estimated think time before its NEXT move
  /// (server::ThinkTimeEstimator is the usual source): with deadline_aware
  /// on, every subscription of this publication carries deadline
  /// now + think_ms. <= 0 means "no estimate" (options_.default_think_ms
  /// applies, else the subscriptions are deadline-free). Ignored — at zero
  /// cost — when deadline scheduling is off.
  ///
  /// `trace_id` (0 = unsampled) tags every subscription of this
  /// publication with the publishing request's trace, so the drain that
  /// eventually fills it can record a prefetch.fetch span against it.
  /// Free when no TraceSink is wired.
  void Publish(std::uint64_t session_id, std::uint64_t generation,
               std::vector<PrefetchCandidate> candidates,
               double think_ms = 0.0, std::uint64_t trace_id = 0);

  /// Drops the session's pending subscriptions and waits for its in-flight
  /// deliveries to settle, without unregistering it (session reset).
  void CancelSession(std::uint64_t session_id);

  /// Blocks until none of the session's subscriptions is pending or being
  /// filled — the "think time is over, region is full" point. Requires a
  /// live executor (see pull mode above).
  void WaitForSession(std::uint64_t session_id);

  /// Blocks until the whole queue is empty and no fill is in flight.
  void Drain();

  /// Stops accepting work: retires every pending subscription as stale and
  /// joins in-flight fills. Publishes after shutdown retire immediately.
  /// Idempotent; also called by the destructor. The SessionManager calls
  /// this BEFORE destroying sessions so teardown never races fills against
  /// dying delivery targets.
  void Shutdown();

  /// Pops the top pending entries — one with the default BatchProfile, up
  /// to max_batch_tiles of them when batching is configured — and runs
  /// their fills synchronously on the calling thread as one backend round
  /// trip (batched fetch, shared-cache landing, per-subscriber deliveries).
  /// Returns false when nothing was drained. This is the pull-mode hook:
  /// executor workers loop it, tests call it directly for deterministic
  /// goldens. Pull-mode callers never observe linger deferrals (deferral
  /// requires another fill in flight).
  bool DrainOne();

  /// Pending (not yet popped) entries.
  std::size_t pending() const;

  PrefetchSchedulerStats Stats() const;

  /// Consistent snapshot of the pending queue, highest priority first.
  std::vector<PrefetchQueueEntry> SnapshotQueue() const;

 private:
  /// One session's claim on a pending tile.
  struct Subscription {
    std::uint64_t session_id = 0;
    std::uint64_t generation = 0;  ///< Publish generation; delivery re-checks it.
    double confidence = 0.0;
    /// Virtual time by which this session statistically needs the tile
    /// (publish time + its think estimate); kNoDeadline when none.
    double deadline_ms = kNoDeadline;
    /// The publishing request's trace id (0 = unsampled); a drain round
    /// records a prefetch.fetch span for each sampled subscription.
    std::uint64_t trace_id = 0;
  };

  /// The single pending entry for a tile key.
  struct Entry {
    std::vector<Subscription> subs;  ///< At most one per session.
    double priority = 0.0;
    /// Validity stamp for lazy heap invalidation: a heap node whose stamp
    /// no longer matches is a superseded score and is skipped at pop.
    /// Shared by the utility and deadline heaps.
    std::uint64_t stamp = 0;
    /// Virtual time the entry first became pending (kNoEnqueueStamp
    /// without a clock — the linger scan skips those). Merges keep the
    /// original time — lingering is bounded by the OLDEST waiting
    /// subscription, not refreshed by new arrivals.
    double enqueue_ms = kNoEnqueueStamp;
    /// Earliest deadline over live subscriptions (kNoDeadline when none
    /// carries one). Recomputed with the priority on every rescore.
    double deadline_ms = kNoDeadline;
  };

  struct HeapNode {
    double priority = 0.0;
    std::uint64_t stamp = 0;
    tiles::TileKey key;
    bool operator<(const HeapNode& other) const {
      if (priority != other.priority) return priority < other.priority;
      return stamp > other.stamp;  // equal priority: earlier publication first
    }
  };

  /// Node in the deadline min-heap (earliest deadline at the top). Shares
  /// Entry::stamp with the utility heap, so one rescore invalidates both
  /// heaps' stale nodes lazily.
  struct DeadlineNode {
    double deadline_ms = kNoDeadline;
    std::uint64_t stamp = 0;
    tiles::TileKey key;
    bool operator<(const DeadlineNode& other) const {
      if (deadline_ms != other.deadline_ms)
        return deadline_ms > other.deadline_ms;  // min-heap on deadline
      return stamp > other.stamp;  // ties: earlier publication first
    }
  };

  struct SessionState {
    Delivery deliver;
    std::uint64_t generation = 0;  ///< Latest published generation.
    /// Keys this session is subscribed to that are still pending (popping
    /// a key removes it here), so invalidation is O(own subscriptions).
    std::vector<tiles::TileKey> pending_keys;
    /// Subscriptions attached to fills currently executing. The session
    /// may not be erased (and its Delivery not destroyed) while nonzero.
    std::size_t in_flight = 0;
    bool unregistering = false;
    /// Fairness share weight (SetSessionWeight; consulted only while
    /// fairness_share > 0).
    double weight = 1.0;
    /// Deficit-round-robin credit: accrues weight-proportionally each
    /// drain round the session has pending work, is charged 1 per drained
    /// fill serving it (floored at -1 so a long well-served streak cannot
    /// bank unbounded debt against a later starvation episode), and resets
    /// to 0 whenever the session's queue empties (classic DRR). The
    /// fairness slice serves the session with the largest deficit.
    double deficit = 0.0;
  };

  /// One drain round's outcome. kDeferred: a partial batch chose to linger
  /// for more keys (only possible while another fill is in flight, whose
  /// completion re-plans the queue — see storage/batch_fetch.h).
  enum class DrainVerdict { kEmpty, kDeferred, kDrained };

  /// An entry popped into the current drain round's batch.
  struct PoppedEntry {
    tiles::TileKey key;
    std::vector<Subscription> subs;
    /// The entry's enqueue stamp at pop time, for the queue-wait
    /// histogram (kNoEnqueueStamp when published clockless).
    double enqueue_ms = kNoEnqueueStamp;
  };

  /// The batched drain round behind DrainOne and WorkerLoop: plans a pop
  /// size with batcher_, pops that many top entries, fetches them in one
  /// backend round trip, and delivers to still-current subscribers.
  DrainVerdict DrainBatch();

  /// Recomputes the entry's priority and earliest deadline from its live
  /// subscriptions and pushes freshly stamped nodes (both heaps share the
  /// stamp). Caller holds mu_.
  void RescoreLocked(const tiles::TileKey& key, Entry& entry);

  /// Whether this instance schedules by deadline at all (option on AND a
  /// clock to measure deadlines against). Caller holds mu_.
  bool DeadlineEnabledLocked() const {
    return options_.deadline_aware && options_.clock != nullptr;
  }

  /// Pops up to `budget` earliest-deadline entries whose priority clears
  /// the bar into `batch` (adjacency-aware when the window is on),
  /// updating promotion/miss stats. Caller holds mu_. Returns the number
  /// popped.
  std::size_t PopDeadlinesLocked(std::size_t budget, double now_ms,
                                 std::vector<PoppedEntry>& batch);

  /// Whether the per-session fairness layer is active. Caller holds mu_.
  bool FairnessEnabledLocked() const { return options_.fairness_share > 0.0; }

  /// One drain round's DRR bookkeeping: resets the deficit of every
  /// session whose queue emptied, accrues weight-proportional credit to
  /// sessions with pending work, and banks this round's slot reservation
  /// (budget x fairness_share, carried fractionally across rounds in
  /// fairness_credit_). Caller holds mu_.
  void AccrueFairnessLocked(std::size_t budget);

  /// Slots the fairness slice can actually use this round: bounded by the
  /// banked credit and by the underserved sessions' outstanding claims
  /// (sum of positive deficits, rounded up per session). The EDF pass is
  /// capped at budget minus this reservation — under saturation every
  /// above-the-bar entry carries a deadline, so without ceding slots EDF
  /// would consume the whole batch and the guaranteed share would only
  /// ever be paid out of idle rounds. Caller holds mu_.
  std::size_t FairnessClaimLocked(std::size_t budget) const;

  /// Serves up to `budget` banked fairness slots: each slot pops the
  /// most-underserved (largest-deficit) session's highest-priority pending
  /// entry into `batch`. Entries already popped by the EDF pass count
  /// against their subscribers via `batch`, so one session cannot sweep a
  /// whole round on one round's credit. Caller holds mu_.
  void PopFairnessLocked(std::size_t budget, std::vector<PoppedEntry>& batch);

  /// Retires every pending subscription of `state` as stale. Caller holds
  /// mu_.
  void InvalidateLocked(SessionState& state, std::uint64_t session_id);

  /// Tops up executor drain workers (never beyond max_in_flight or the
  /// number of pending entries). Caller holds mu_.
  void SpawnWorkersLocked();

  void WorkerLoop();

  storage::TileStore* store_;
  Executor* executor_;      ///< Null in pull mode.
  SharedTileCache* shared_;  ///< Null: fills skip the shared-cache landing.
  PrefetchSchedulerOptions options_;
  storage::FetchBatcher batcher_;  ///< Batch formation policy for drains.

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< Fill/delivery completion, worker exit.
  std::unordered_map<tiles::TileKey, Entry, tiles::TileKeyHash> pending_;
  std::priority_queue<HeapNode> heap_;  ///< May hold stale (re-scored) nodes.
  /// Deadline-ordered companion to heap_, populated only while deadline
  /// scheduling is enabled and only with finite-deadline entries. Shares
  /// the lazy-invalidation stamps.
  std::priority_queue<DeadlineNode> deadline_heap_;
  std::unordered_map<std::uint64_t, std::unique_ptr<SessionState>> sessions_;
  std::uint64_t next_auto_id_ = 1ull << 48;  ///< Clear of SessionManager ids.
  std::uint64_t stamp_counter_ = 0;
  /// Banked fairness slots (fractional): each round adds budget x
  /// fairness_share, each served fairness slot subtracts 1. Capped at one
  /// full batch so an idle stretch cannot bank an unbounded burst.
  double fairness_credit_ = 0.0;
  std::size_t workers_ = 0;          ///< Executor drain tasks alive.
  std::size_t in_flight_fills_ = 0;  ///< Entries popped, fill not finished.
  bool shutdown_ = false;
  PrefetchSchedulerStats stats_;

  /// Telemetry instruments, resolved once at construction (null when
  /// options_.metrics is null).
  telemetry::Histogram* batch_size_hist_ = nullptr;
  telemetry::Histogram* queue_wait_us_ = nullptr;
  telemetry::Histogram* fill_latency_us_ = nullptr;
};

/// Folds the scheduler's Stats() into `registry` as fc.prefetch.* counters
/// (plus a fc.prefetch.pending gauge), refreshed on every registry
/// snapshot. Returns the source id; RemoveSource it before `scheduler`
/// dies.
std::uint64_t RegisterPrefetchSchedulerMetrics(
    telemetry::MetricsRegistry* registry, const PrefetchScheduler* scheduler);

}  // namespace fc::core

#endif  // FORECACHE_CORE_PREFETCH_SCHEDULER_H_
