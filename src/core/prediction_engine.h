// PredictionEngine: the paper's two-level prediction engine (section 4).
//
// Top level: an SVM classifier infers the user's current analysis phase.
// Bottom level: the AB and SB recommenders each produce a ranked tile list.
// An allocation strategy splits the prefetch budget k between them based on
// the predicted phase; the engine merges the lists into one ranked prefetch
// order P = [T1, T2, ...].

#ifndef FORECACHE_CORE_PREDICTION_ENGINE_H_
#define FORECACHE_CORE_PREDICTION_ENGINE_H_

#include <vector>

#include "core/allocation.h"
#include "core/phase_classifier.h"
#include "core/recommender.h"
#include "core/roi_tracker.h"

namespace fc::core {

struct PredictionEngineOptions {
  std::size_t prefetch_k = 5;      ///< Tiles fetchable before the next request.
  int candidate_distance = 1;      ///< d: max moves from r (paper default 1).
  std::size_t history_length = 8;  ///< n: retained requests (paper's H).
};

/// One prediction: the inferred phase and the ranked prefetch list.
struct EnginePrediction {
  AnalysisPhase phase = AnalysisPhase::kForaging;
  RankedTiles tiles;           ///< Size <= prefetch_k.
  /// Per-tile confidence in (0, 1], parallel to `tiles`: rank-decayed
  /// (1/(1+rank)), at full strength only when BOTH recommenders ranked the
  /// tile — cross-model agreement is the engine's certainty signal. A tile
  /// only one model predicted is scaled by 0.6, so single-source
  /// predictions never reach the shared cache's default
  /// priority-admission bound (0.9): one confidently wrong model — or a
  /// scan dressed up as momentum — cannot force cold tiles past the
  /// admission filter. A proxy until the recommenders expose calibrated
  /// scores.
  std::vector<double> confidences;
  Allocation allocation;       ///< The split that produced `tiles`.
};

class PredictionEngine {
 public:
  /// All pointers must outlive the engine. `classifier` may be null, in
  /// which case every request is treated as `fallback_phase` (used for
  /// single-model ablations).
  PredictionEngine(const tiles::PyramidSpec* spec, const PhaseClassifier* classifier,
                   const Recommender* ab, const Recommender* sb,
                   const AllocationStrategy* strategy,
                   PredictionEngineOptions options = {});

  /// Processes one user request: updates history and ROI state, classifies
  /// the phase, runs the allocated recommenders, and returns the merged
  /// prefetch list.
  Result<EnginePrediction> OnRequest(const TileRequest& request);

  /// Clears session state (history + ROI) for a new session.
  void Reset();

  const SessionHistory& history() const { return history_; }
  const RoiTracker& roi_tracker() const { return roi_tracker_; }
  const PredictionEngineOptions& options() const { return options_; }

  AnalysisPhase fallback_phase = AnalysisPhase::kNavigation;

 private:
  const tiles::PyramidSpec* spec_;
  const PhaseClassifier* classifier_;
  const Recommender* ab_;
  const Recommender* sb_;
  const AllocationStrategy* strategy_;
  PredictionEngineOptions options_;

  SessionHistory history_;
  RoiTracker roi_tracker_;
};

/// Merges two ranked lists under an allocation: the priority model fills its
/// slots first, then the other fills the rest, skipping duplicates. Unfilled
/// slots are handed to the other model. Result size <= k.
RankedTiles MergeRankedLists(const RankedTiles& ab, const RankedTiles& sb,
                             const Allocation& allocation, std::size_t k);

}  // namespace fc::core

#endif  // FORECACHE_CORE_PREDICTION_ENGINE_H_
