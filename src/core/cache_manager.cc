#include "core/cache_manager.h"

namespace fc::core {

CacheManager::CacheManager(storage::TileStore* store, CacheManagerOptions options)
    : store_(store),
      options_(options),
      history_(options.history_capacity),
      prefetch_(options.prefetch_capacity) {}

Result<FetchOutcome> CacheManager::Request(const tiles::TileKey& key) {
  ++requests_;
  FetchOutcome outcome;

  auto from_history = history_.Get(key);
  if (from_history.ok()) {
    outcome.tile = *from_history;
    outcome.cache_hit = true;
    ++cache_hits_;
    return outcome;
  }
  auto from_prefetch = prefetch_.Get(key);
  if (from_prefetch.ok()) {
    outcome.tile = *from_prefetch;
    outcome.cache_hit = true;
    ++cache_hits_;
    // Promote into the history region: the user actually viewed it.
    history_.Put(key, outcome.tile);
    return outcome;
  }

  FC_ASSIGN_OR_RETURN(outcome.tile, store_->Fetch(key));
  outcome.cache_hit = false;
  history_.Put(key, outcome.tile);
  return outcome;
}

Status CacheManager::Prefetch(const std::vector<tiles::TileKey>& predictions) {
  prefetch_.Clear();
  std::size_t filled = 0;
  for (const auto& key : predictions) {
    if (filled >= options_.prefetch_capacity) break;
    if (history_.Contains(key)) {
      ++filled;  // already resident; the slot is effectively spent
      continue;
    }
    FC_ASSIGN_OR_RETURN(auto tile, store_->Fetch(key));
    prefetch_.Put(key, std::move(tile));
    ++filled;
  }
  return Status::OK();
}

bool CacheManager::Cached(const tiles::TileKey& key) const {
  return history_.Contains(key) || prefetch_.Contains(key);
}

void CacheManager::Clear() {
  history_.Clear();
  prefetch_.Clear();
}

double CacheManager::HitRate() const {
  return requests_ == 0
             ? 0.0
             : static_cast<double>(cache_hits_) / static_cast<double>(requests_);
}

}  // namespace fc::core
