#include "core/cache_manager.h"

namespace fc::core {

CacheManager::CacheManager(storage::TileStore* store, CacheManagerOptions options,
                           SharedTileCache* shared)
    : store_(store),
      options_(options),
      shared_(shared),
      history_(options.history_bytes),
      prefetch_(options.prefetch_bytes) {}

Result<tiles::TilePtr> CacheManager::FetchThrough(const tiles::TileKey& key,
                                                  double confidence) {
  if (shared_ != nullptr) {
    return shared_->GetOrFetch(key, store_,
                               {options_.session_id, confidence});
  }
  return store_->Fetch(key);
}

Result<FetchOutcome> CacheManager::Request(const tiles::TileKey& key) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  FetchOutcome outcome;

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto from_history = history_.Get(key);
    if (from_history.ok()) {
      outcome.tile = *from_history;
      outcome.cache_hit = true;
      private_hits_.fetch_add(1, std::memory_order_relaxed);
      return outcome;
    }
    auto from_prefetch = prefetch_.Get(key);
    if (from_prefetch.ok()) {
      outcome.tile = *from_prefetch;
      outcome.cache_hit = true;
      private_hits_.fetch_add(1, std::memory_order_relaxed);
      // Promote into the history region: the user actually viewed it.
      history_.Put(key, outcome.tile);
      return outcome;
    }
  }

  // Both private regions missed. Probe the shared cache — a hit there is
  // still middleware memory (another session fetched it for us).
  if (shared_ != nullptr) {
    if (auto tile = shared_->Lookup(key, {options_.session_id})) {
      outcome.tile = std::move(tile);
      outcome.cache_hit = true;
      outcome.shared_hit = true;
      shared_hits_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      history_.Put(key, outcome.tile);
      return outcome;
    }
  }

  // Full miss: fetch outside the region lock (the DBMS query is slow) and
  // publish the tile for other sessions. The shared cache was already
  // probed above, so fetch the store directly rather than through
  // GetOrFetch (which would re-probe and double-count the miss).
  FC_ASSIGN_OR_RETURN(outcome.tile, store_->Fetch(key));
  if (shared_ != nullptr) {
    shared_->Insert(key, outcome.tile, {options_.session_id});
  }
  outcome.cache_hit = false;
  std::lock_guard<std::mutex> lock(mu_);
  history_.Put(key, outcome.tile);
  return outcome;
}

Status CacheManager::Prefetch(const std::vector<tiles::TileKey>& predictions) {
  return Prefetch(predictions, {}, [] { return false; });
}

Status CacheManager::Prefetch(const std::vector<tiles::TileKey>& predictions,
                              const std::function<bool()>& cancelled) {
  return Prefetch(predictions, {}, cancelled);
}

Status CacheManager::Prefetch(const std::vector<tiles::TileKey>& predictions,
                              const std::vector<double>& confidences,
                              const std::function<bool()>& cancelled) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A fill superseded before it even started must not touch the region:
    // its successor may already have cleared and repopulated it.
    if (cancelled()) return Status::OK();
    prefetch_.Clear();
  }
  std::size_t filled_bytes = 0;
  const std::size_t budget = options_.prefetch_bytes;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const tiles::TileKey& key = predictions[i];
    if (filled_bytes >= budget) break;
    if (cancelled()) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (auto resident = history_.Peek(key)) {
        // Already resident; its bytes are effectively spent from the budget
        // (the paper refills the region around what the user holds).
        filled_bytes += resident->SizeBytes();
        continue;
      }
    }
    const double confidence = i < confidences.size() ? confidences[i] : 0.0;
    auto tile = FetchThrough(key, confidence);  // slow path — never under the lock
    if (!tile.ok()) {
      // Skip the bad tile and keep draining the ranked list: one missing
      // tile must not starve every lower-ranked prediction.
      prefetch_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::size_t bytes = (*tile)->SizeBytes();
    // The ranked list is priority-ordered: the first tile that no longer
    // fits ends the fill rather than evicting higher-priority tiles. The
    // overflow tile's own fetch is spent — its size is only knowable after
    // the fetch (the store's spec has geometry but not attribute count) —
    // but at most one fetch per fill is wasted, and only on truncation.
    if (filled_bytes > 0 && filled_bytes + bytes > budget) break;
    std::lock_guard<std::mutex> lock(mu_);
    // Re-check under the lock: if this fill is superseded now, a successor
    // fill's Clear() has either run (we must not re-pollute its region) or
    // will run after we release mu_ (and would erase anything we put).
    // Checking and inserting under one lock hold closes the gap between.
    if (cancelled()) break;
    prefetch_.Put(key, std::move(*tile));
    filled_bytes += bytes;
  }
  return Status::OK();
}

std::vector<PrefetchCandidate> CacheManager::BeginPrefetch(
    const std::vector<tiles::TileKey>& predictions,
    const std::vector<double>& confidences, std::uint64_t generation) {
  std::vector<PrefetchCandidate> plan;
  plan.reserve(predictions.size());
  std::lock_guard<std::mutex> lock(mu_);
  prefetch_.Clear();
  fill_generation_ = generation;
  fill_open_ = true;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const tiles::TileKey& key = predictions[i];
    // Already resident where the user can hit it: nothing to schedule (the
    // synchronous path skips these the same way).
    if (history_.Contains(key)) continue;
    bool duplicate = false;
    for (const auto& candidate : plan) {
      if (candidate.key == key) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    plan.push_back(
        PrefetchCandidate{key, i < confidences.size() ? confidences[i] : 0.0});
  }
  return plan;
}

bool CacheManager::AcceptPrefetched(const tiles::TileKey& key,
                                    const tiles::TilePtr& tile,
                                    std::uint64_t generation) {
  if (tile == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  // A delivery for a superseded fill must not pollute the re-planned
  // region (its successor's BeginPrefetch has already cleared it).
  if (!fill_open_ || generation != fill_generation_) return false;
  prefetch_.Put(key, tile);
  return true;
}

void CacheManager::AbortPrefetch() {
  std::lock_guard<std::mutex> lock(mu_);
  fill_open_ = false;
}

bool CacheManager::Cached(const tiles::TileKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_.Contains(key) || prefetch_.Contains(key);
}

void CacheManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  history_.Clear();
  prefetch_.Clear();
  fill_open_ = false;  // stragglers from a pre-Clear fill are rejected
}

double CacheManager::HitRate() const {
  auto requests = requests_.load(std::memory_order_relaxed);
  return requests == 0 ? 0.0
                       : static_cast<double>(cache_hits()) /
                             static_cast<double>(requests);
}

double CacheManager::PrivateHitRate() const {
  auto requests = requests_.load(std::memory_order_relaxed);
  return requests == 0 ? 0.0
                       : static_cast<double>(private_hits()) /
                             static_cast<double>(requests);
}

}  // namespace fc::core
