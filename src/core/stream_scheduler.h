// StreamScheduler: the process-wide continuous push channel for prefetched
// tiles.
//
// The prefetch pipeline up to here is request-triggered and all-or-nothing
// per tile: a fill only helps a session once its FULL payload has crossed
// the client channel. Continuous Prefetch (Khameleon, PAPERS.md) shows the
// bigger win — treat the client-facing channel as a continuously scheduled
// resource — and HiFIVE motivates the coarse-first fidelity ladder. Fills
// completed by the PrefetchScheduler are submitted here as they land (not
// once per request), split by the progressive codec into a small coarse
// BASE chunk plus an exact REFINEMENT chunk (storage/tile_codec.h), and
// pushed to sessions under explicit byte-rate budgets:
//
//  * Utility-per-byte allocation. Every pending USABLE chunk (a tile's
//    first chunk: the base, or the whole blob in all-or-nothing mode)
//    outranks every refinement. Within the usable class a chunk's rank is
//      base_utility_weight x confidence / exact_payload_bytes
//    — the tile's end-state utility density, so the progressive schedule
//    visits tiles in exactly the order the all-or-nothing schedule would,
//    just with far fewer bytes before each tile becomes usable (the
//    conformance property the stream harness enforces). Refinements rank
//    refine_utility_weight x confidence / refinement_bytes. Ties break by
//    submission order, so pull-mode pumps are fully deterministic.
//  * Byte-rate budgets on the fc::Clock abstraction. Each session has a
//    token bucket (bytes_per_ms, burst_bytes) and the scheduler has an
//    optional global egress bucket shared by all sessions — the saturated
//    resource the utility order allocates. A chunk larger than a full
//    bucket is sent when the bucket is full, driving it negative, so
//    oversized tiles stall but never deadlock. Without a clock (or with
//    rate 0) budgets are unlimited.
//  * Base-before-refinement: a refinement is ineligible until its base
//    chunk has been pushed, and dropping a base (supersession, expiry)
//    drops its refinement with it.
//  * Generation supersession and expiry mirror the PrefetchScheduler:
//    CancelStaleGenerations sheds chunks from publications the user has
//    moved past; max_chunk_age_ms expires chunks that sat queued too long.
//    Chunks submitted while no clock is wired carry kNoEnqueueStamp, NOT
//    stamp 0 — the expiry scan skips them, so wiring a clock late cannot
//    force-flush the backlog as infinitely old.
//  * Deadline mode and fairness compose like the fetch-side scheduler:
//    with deadline_aware on, chunks at or above deadline_utility_bar push
//    earliest-deadline-first within their class (expired ones are demoted
//    back to utility order, counted as deadline_misses); with
//    fairness_share s, a weighted round-robin slice serves the
//    most-underserved-by-bytes session every 1/s picks.
//
// Thread-safety: all methods are thread-safe. One mutex guards the chunk
// list, the session registry, the buckets, and the counters; encoding
// happens before the lock and sink invocations happen outside it, pinned
// by per-session in-flight counts (a session is never erased mid-push).
// Sinks must not call back into the scheduler.
//
// With an Executor the scheduler pumps itself whenever work is submitted;
// with none it is in PULL MODE and the owner drives it via Pump()/Flush()
// — deterministic, used by the conformance harness and the bench.

#ifndef FORECACHE_CORE_STREAM_SCHEDULER_H_
#define FORECACHE_CORE_STREAM_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/executor.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "storage/tile_codec.h"
#include "tiles/tile.h"
#include "tiles/tile_key.h"

namespace fc::core {

/// Per-session push budget: a token bucket on the scheduler's clock.
struct StreamSessionLimits {
  /// Sustained push rate. 0 = unlimited (also the behavior while no clock
  /// is wired — budgets need a time source).
  double bytes_per_ms = 0.0;
  /// Bucket capacity (also the initial balance). Chunks larger than this
  /// are sent when the bucket is full, driving it negative.
  std::size_t burst_bytes = 256 * 1024;
  /// Fairness weight (consulted only while fairness_share > 0).
  double weight = 1.0;
};

struct StreamSchedulerOptions {
  /// Time source for budgets, expiry, and deadlines; the scheduler only
  /// ever READS it. May be wired late via SetClock — chunks submitted
  /// before that carry kNoEnqueueStamp and are exempt from expiry.
  const Clock* clock = nullptr;

  /// Progressive two-chunk streaming (base + refinement). Off, every tile
  /// is pushed as ONE exact chunk — the request-triggered all-or-nothing
  /// baseline the conformance property and the bench compare against.
  bool progressive = true;

  /// Final-fidelity encoding of the pushed payload (and the base fidelity
  /// via progressive_base_step).
  storage::TileCodecOptions codec;

  /// Global egress bucket shared by every session (the server's outbound
  /// channel). 0 = unlimited.
  double total_bytes_per_ms = 0.0;
  std::size_t total_burst_bytes = 1024 * 1024;

  /// Utility weights of the two chunk classes (see the rank formula in the
  /// header notes). Every usable chunk outranks every refinement
  /// regardless of these weights.
  double base_utility_weight = 1.0;
  double refine_utility_weight = 0.25;

  /// Queued chunks older than this (virtual ms) are dropped at pump time
  /// as expired_chunks_dropped. 0 = never expire. Chunks stamped
  /// kNoEnqueueStamp (submitted clockless) are exempt.
  double max_chunk_age_ms = 0.0;

  /// Earliest-deadline-first within each chunk class for chunks whose
  /// utility-per-byte clears deadline_utility_bar (requires a clock).
  /// Expired chunks demote back to utility order (deadline_misses).
  bool deadline_aware = false;
  double deadline_utility_bar = 0.0;

  /// Fraction of pump picks reserved for the most-underserved-by-bytes
  /// session (weighted by StreamSessionLimits::weight), in [0, 1]. 0
  /// disables the fairness layer — pick order is pure class/utility.
  double fairness_share = 0.0;

  /// Chunks pushed per Pump() round at most (bounds sink work per call).
  std::size_t max_pump_chunks = 64;

  /// Telemetry (optional, zero hot-path cost when null). With `metrics`,
  /// each first-usable push records fc.stream.ttfu_us — submit-to-push
  /// time on `clock`'s time base, the time-to-first-usable the PR 9 bench
  /// measured ad hoc. With `trace`, pushes of chunks submitted under a
  /// sampled trace record stream.push spans. Both must outlive the
  /// scheduler.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::TraceSink* trace = nullptr;
};

/// Point-in-time counters. Every submitted tile either pushes its usable
/// chunk (first_usable_pushes) or is dropped (stale / expired), and
/// chunks_pushed == base_chunks_pushed + exact_chunks_pushed.
struct StreamSchedulerStats {
  std::uint64_t tiles_submitted = 0;
  std::uint64_t chunks_enqueued = 0;
  std::uint64_t chunks_pushed = 0;
  std::uint64_t base_chunks_pushed = 0;   ///< Coarse lossy payloads.
  std::uint64_t exact_chunks_pushed = 0;  ///< Refinements and whole blobs.
  std::uint64_t bytes_pushed = 0;
  /// Tiles whose FIRST chunk (base, or the whole blob) was pushed — the
  /// moment the tile became usable client-side.
  std::uint64_t first_usable_pushes = 0;
  /// Chunks dropped by supersession, cancellation, or shutdown.
  std::uint64_t stale_chunks_dropped = 0;
  /// Chunks dropped by the max_chunk_age_ms scan.
  std::uint64_t expired_chunks_dropped = 0;
  /// Pump rounds that found queued work but pushed nothing for budget.
  std::uint64_t budget_stalls = 0;
  /// Deadline mode: EDF picks, picks that jumped a strictly
  /// higher-utility chunk, and chunks reached past their deadline.
  std::uint64_t deadline_picks = 0;
  std::uint64_t deadline_promotions = 0;
  std::uint64_t deadline_misses = 0;
  /// Fairness slice: picks, and picks that jumped a strictly
  /// higher-utility chunk.
  std::uint64_t fairness_picks = 0;
  std::uint64_t fairness_promotions = 0;
};

/// A queued chunk, as reported by SnapshotQueue() (push order not implied).
struct StreamChunkInfo {
  std::uint64_t session_id = 0;
  tiles::TileKey key;
  std::uint64_t generation = 0;
  bool exact = false;  ///< Refinement or whole blob (false: coarse base).
  std::size_t bytes = 0;
  double utility_per_byte = 0.0;
  /// Virtual submit time; kNoEnqueueStamp when submitted clockless.
  double enqueue_ms = -1.0;
  double deadline_ms = std::numeric_limits<double>::infinity();
};

/// Process-wide continuous push channel. One instance serves every session
/// of a SessionManager; server::PushStream is the per-session facade.
class StreamScheduler {
 public:
  /// Enqueue stamp of chunks submitted while no clock was wired. A
  /// sentinel, NOT virtual time 0: the expiry scan skips these instead of
  /// treating them as infinitely old (which would force-flush the whole
  /// backlog the moment a clock appears). Same convention as
  /// PrefetchScheduler::kNoEnqueueStamp.
  static constexpr double kNoEnqueueStamp = -1.0;

  /// Deadline for submissions without one: never urgent.
  static constexpr double kNoDeadline =
      std::numeric_limits<double>::infinity();

  /// Receives one pushed chunk: the decoded payload at that fidelity
  /// (`exact` false = coarse base, true = exact tile) and the publish
  /// generation it was submitted under. Invoked WITHOUT the scheduler
  /// lock, possibly from an executor thread; must not call back into the
  /// scheduler.
  using ChunkSink = std::function<void(
      const tiles::TileKey& key, const tiles::TilePtr& tile, bool exact,
      std::uint64_t generation)>;

  /// `executor` null puts the scheduler in pull mode (see header notes);
  /// otherwise it must outlive the scheduler.
  explicit StreamScheduler(Executor* executor,
                           StreamSchedulerOptions options = {});

  /// Shuts down: drops all queued chunks and joins in-flight pushes
  /// (registered sessions need not be unregistered first).
  ~StreamScheduler();

  StreamScheduler(const StreamScheduler&) = delete;
  StreamScheduler& operator=(const StreamScheduler&) = delete;

  /// Registers a session. `session_id` is the caller's stable nonzero
  /// identity; 0 — or a collision — auto-assigns a fresh one. Returns the
  /// effective id, which all other per-session calls take.
  std::uint64_t RegisterSession(std::uint64_t session_id,
                                StreamSessionLimits limits, ChunkSink sink);

  /// Drops the session's queued chunks (stale), waits for its in-flight
  /// pushes to settle, and forgets it. After return its sink is never
  /// invoked again. No-op for unknown ids.
  void UnregisterSession(std::uint64_t session_id);

  /// Drops the session's queued chunks and waits for its in-flight pushes,
  /// without unregistering it (session reset / abort).
  void CancelSession(std::uint64_t session_id);

  /// Drops the session's queued chunks from generations other than
  /// `live_generation` — the push-side supersession a new publication
  /// triggers. Does not wait for in-flight pushes (their receivers
  /// generation-check anyway, see CacheManager::AcceptPrefetched).
  void CancelStaleGenerations(std::uint64_t session_id,
                              std::uint64_t live_generation);

  /// Wires (or replaces) the time source. Chunks already queued keep their
  /// stamps — including the clockless sentinel, which stays exempt from
  /// expiry. Budgets start metering from the next pump.
  void SetClock(const Clock* clock);

  /// Splits `tile` per the progressive codec (or encodes it whole in
  /// all-or-nothing mode) and queues the chunks for `session_id`.
  /// `confidence` feeds the utility rank; `deadline_ms` is an absolute
  /// virtual time (kNoDeadline = none). Unknown/unregistering sessions
  /// drop the submission as stale. With an executor, submission kicks the
  /// self-pump. `trace_id` (0 = unsampled) attributes the resulting chunk
  /// pushes to the publishing request's trace.
  void SubmitTile(std::uint64_t session_id, const tiles::TileKey& key,
                  const tiles::TilePtr& tile, std::uint64_t generation,
                  double confidence, double deadline_ms = kNoDeadline,
                  std::uint64_t trace_id = 0);

  /// One bounded pump round: refills buckets from the clock, expires stale
  /// chunks, then pushes up to max_pump_chunks budget-eligible chunks in
  /// class/utility order. Returns the number pushed. This is the pull-mode
  /// hook; safe to call concurrently with the self-pump.
  std::size_t Pump();

  /// Pumps until no further progress (budget-blocked or empty). Returns
  /// total chunks pushed. With rate limits and a frozen clock this returns
  /// once the buckets run dry — it never busy-waits.
  std::size_t Flush();

  /// Re-arms the self-pump if queued work exists (executor mode only; the
  /// self-pump parks when budgets run dry, and time passing does not wake
  /// it by itself).
  void Kick();

  /// Stops accepting work: drops every queued chunk and joins in-flight
  /// pushes. Idempotent; also called by the destructor.
  void Shutdown();

  /// Queued (not yet pushed) chunks.
  std::size_t queued() const;

  StreamSchedulerStats Stats() const;

  /// Consistent snapshot of the queued chunks, in submission order.
  std::vector<StreamChunkInfo> SnapshotQueue() const;

 private:
  struct ChunkJob {
    std::uint64_t session_id = 0;
    tiles::TileKey key;
    std::uint64_t generation = 0;
    bool exact = false;
    /// Usable chunks (first chunk of a tile) form class 0 and always
    /// outrank class-1 refinements.
    bool usable = false;
    /// Refinements start gated and become eligible when their base chunk
    /// is picked for push.
    bool awaiting_base = false;
    std::size_t bytes = 0;
    double utility_per_byte = 0.0;
    double enqueue_ms = kNoEnqueueStamp;
    double deadline_ms = kNoDeadline;
    std::uint64_t seq = 0;  ///< Submission order; deterministic tie-break.
    std::uint64_t trace_id = 0;  ///< Publishing request's trace (0 = off).
    tiles::TilePtr payload;  ///< Decoded at this chunk's fidelity.
  };

  struct SessionState {
    ChunkSink sink;
    StreamSessionLimits limits;
    /// Token bucket balance. Starts full; may go negative for chunks
    /// larger than the burst (sent at full bucket).
    double tokens = 0.0;
    /// Virtual time of the last refill; kNoEnqueueStamp before the first
    /// metered pump (no retroactive credit when a clock appears late).
    double last_refill_ms = kNoEnqueueStamp;
    /// Cumulative pushed bytes / weight drives the fairness slice.
    double bytes_served = 0.0;
    std::size_t in_flight = 0;  ///< Pushes handed to the sink, not settled.
    bool unregistering = false;
  };

  /// A chunk picked for push this round, pinned for delivery outside the
  /// lock.
  struct ReadyChunk {
    SessionState* session = nullptr;
    tiles::TileKey key;
    tiles::TilePtr payload;
    bool exact = false;
    std::uint64_t generation = 0;
    std::uint64_t session_id = 0;  ///< For trace attribution.
    std::uint64_t trace_id = 0;    ///< 0 = no stream.push span.
    double push_start_ms = 0.0;    ///< Span start (selection time).
  };

  /// Refills one session's bucket (and lazily the global bucket) from the
  /// clock. Caller holds mu_.
  void RefillBudgetsLocked(double now_ms);

  /// Drops queued chunks older than max_chunk_age_ms (sentinel-stamped
  /// chunks exempt). Caller holds mu_.
  void ExpireLocked(double now_ms);

  /// Whether `job` may be pushed right now (session live, base pushed,
  /// both buckets can cover it). Caller holds mu_.
  bool EligibleLocked(const ChunkJob& job, const SessionState& state) const;

  /// Selects the next chunk to push per the class/deadline/fairness/
  /// utility order, or jobs_.end(). Caller holds mu_.
  std::list<ChunkJob>::iterator SelectLocked(double now_ms);

  /// Removes `it` and, when it gates a refinement that can now never
  /// apply, that refinement too. `counter` classifies the drop. Caller
  /// holds mu_.
  std::list<ChunkJob>::iterator DropLocked(std::list<ChunkJob>::iterator it,
                                           std::uint64_t* counter);

  /// Arms one self-pump task if queued work exists. Caller holds mu_.
  void SpawnPumpLocked();

  Executor* executor_;  ///< Null in pull mode.
  StreamSchedulerOptions options_;
  storage::TileCodec codec_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< Push settlement, pump exit.
  std::list<ChunkJob> jobs_;    ///< Submission order.
  std::unordered_map<std::uint64_t, std::unique_ptr<SessionState>> sessions_;
  std::uint64_t next_auto_id_ = 1ull << 48;  ///< Clear of SessionManager ids.
  std::uint64_t seq_counter_ = 0;
  double total_tokens_ = 0.0;
  double total_last_refill_ms_ = kNoEnqueueStamp;
  /// Banked fairness picks (fractional): every pick adds fairness_share,
  /// a served fairness pick subtracts 1. Capped at one pump round.
  double fairness_credit_ = 0.0;
  bool pump_armed_ = false;  ///< A self-pump task is queued or running.
  std::size_t in_flight_pushes_ = 0;
  bool shutdown_ = false;
  StreamSchedulerStats stats_;

  /// Telemetry instrument, resolved once at construction (null when
  /// options_.metrics is null).
  telemetry::Histogram* ttfu_us_ = nullptr;
};

/// Folds the scheduler's Stats() into `registry` as fc.stream.* counters
/// (plus a fc.stream.queued gauge), refreshed on every registry snapshot.
/// Returns the source id; RemoveSource it before `scheduler` dies.
std::uint64_t RegisterStreamSchedulerMetrics(
    telemetry::MetricsRegistry* registry, const StreamScheduler* scheduler);

}  // namespace fc::core

#endif  // FORECACHE_CORE_STREAM_SCHEDULER_H_
