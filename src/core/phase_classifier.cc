#include "core/phase_classifier.h"

#include <algorithm>

#include "common/rng.h"

namespace fc::core {

std::string_view PhaseFeatureToString(PhaseFeature feature) {
  switch (feature) {
    case PhaseFeature::kX: return "x_position";
    case PhaseFeature::kY: return "y_position";
    case PhaseFeature::kZoomLevel: return "zoom_level";
    case PhaseFeature::kPanFlag: return "pan_flag";
    case PhaseFeature::kZoomInFlag: return "zoom_in_flag";
    case PhaseFeature::kZoomOutFlag: return "zoom_out_flag";
  }
  return "?";
}

std::vector<double> ExtractPhaseFeatures(const TileRequest& request) {
  std::vector<double> f(kNumPhaseFeatures, 0.0);
  f[0] = static_cast<double>(request.tile.x);
  f[1] = static_cast<double>(request.tile.y);
  f[2] = static_cast<double>(request.tile.level);
  if (request.move.has_value()) {
    f[3] = IsPan(*request.move) ? 1.0 : 0.0;
    f[4] = IsZoomIn(*request.move) ? 1.0 : 0.0;
    f[5] = IsZoomOut(*request.move) ? 1.0 : 0.0;
  }
  return f;
}

std::vector<double> PhaseClassifier::ProjectFeatures(
    const std::vector<double>& full) const {
  if (options_.feature_subset.empty()) return full;
  std::vector<double> out;
  out.reserve(options_.feature_subset.size());
  for (PhaseFeature pf : options_.feature_subset) {
    out.push_back(full[static_cast<std::size_t>(pf)]);
  }
  return out;
}

Result<PhaseClassifier> PhaseClassifier::Train(const std::vector<Trace>& traces,
                                               PhaseClassifierOptions options) {
  PhaseClassifier clf;
  clf.options_ = std::move(options);

  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (const auto& trace : traces) {
    for (const auto& rec : trace.records) {
      rows.push_back(clf.ProjectFeatures(ExtractPhaseFeatures(rec.request)));
      labels.push_back(static_cast<int>(rec.phase));
    }
  }
  if (rows.empty()) {
    return Status::InvalidArgument("phase classifier: no training records");
  }

  if (clf.options_.max_training_rows > 0 && rows.size() > clf.options_.max_training_rows) {
    // Deterministic uniform subsample that preserves order.
    Rng rng(clf.options_.seed);
    std::vector<std::size_t> indices(rows.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    rng.Shuffle(&indices);
    indices.resize(clf.options_.max_training_rows);
    std::sort(indices.begin(), indices.end());
    std::vector<std::vector<double>> sub_rows;
    std::vector<int> sub_labels;
    sub_rows.reserve(indices.size());
    for (std::size_t i : indices) {
      sub_rows.push_back(std::move(rows[i]));
      sub_labels.push_back(labels[i]);
    }
    rows = std::move(sub_rows);
    labels = std::move(sub_labels);
  }

  FC_RETURN_IF_ERROR(clf.scaler_.Fit(rows));
  auto scaled = clf.scaler_.TransformAll(rows);
  FC_ASSIGN_OR_RETURN(clf.svm_,
                      svm::MulticlassSvm::Train(scaled, labels, clf.options_.svm));
  return clf;
}

AnalysisPhase PhaseClassifier::Predict(const TileRequest& request) const {
  auto features = ProjectFeatures(ExtractPhaseFeatures(request));
  int label = svm_.Predict(scaler_.Transform(features));
  return static_cast<AnalysisPhase>(label);
}

double PhaseClassifier::EvaluateAccuracy(const std::vector<Trace>& traces) const {
  std::size_t total = 0;
  std::size_t correct = 0;
  for (const auto& trace : traces) {
    for (const auto& rec : trace.records) {
      ++total;
      if (Predict(rec.request) == rec.phase) ++correct;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace fc::core
