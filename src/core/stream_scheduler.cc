#include "core/stream_scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace fc::core {

namespace {

/// Class-then-utility-then-submission order: every usable chunk outranks
/// every refinement; within a class higher utility-per-byte wins; ties go
/// to the earlier submission (deterministic pull-mode pumps).
bool BetterJob(bool a_usable, double a_util, std::uint64_t a_seq,
               bool b_usable, double b_util, std::uint64_t b_seq) {
  if (a_usable != b_usable) return a_usable;
  if (a_util != b_util) return a_util > b_util;
  return a_seq < b_seq;
}

}  // namespace

StreamScheduler::StreamScheduler(Executor* executor,
                                 StreamSchedulerOptions options)
    : executor_(executor), options_(options), codec_(options.codec) {
  if (options_.max_pump_chunks == 0) options_.max_pump_chunks = 1;
  options_.fairness_share =
      std::clamp(options_.fairness_share, 0.0, 1.0);
  total_tokens_ = static_cast<double>(options_.total_burst_bytes);
  if (options_.metrics != nullptr) {
    ttfu_us_ = options_.metrics->GetHistogram("fc.stream.ttfu_us");
  }
}

StreamScheduler::~StreamScheduler() { Shutdown(); }

std::uint64_t StreamScheduler::RegisterSession(std::uint64_t session_id,
                                               StreamSessionLimits limits,
                                               ChunkSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  if (session_id == 0 || sessions_.count(session_id) > 0) {
    session_id = next_auto_id_++;
  }
  auto state = std::make_unique<SessionState>();
  state->sink = std::move(sink);
  state->limits = limits;
  if (!(state->limits.weight > 0.0)) state->limits.weight = 1.0;
  state->tokens = static_cast<double>(limits.burst_bytes);
  sessions_[session_id] = std::move(state);
  return session_id;
}

void StreamScheduler::UnregisterSession(std::uint64_t session_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  SessionState* state = it->second.get();
  state->unregistering = true;
  for (auto job = jobs_.begin(); job != jobs_.end();) {
    if (job->session_id == session_id) {
      job = DropLocked(job, &stats_.stale_chunks_dropped);
    } else {
      ++job;
    }
  }
  cv_.wait(lock, [&] { return state->in_flight == 0; });
  sessions_.erase(session_id);
}

void StreamScheduler::CancelSession(std::uint64_t session_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  SessionState* state = it->second.get();
  for (auto job = jobs_.begin(); job != jobs_.end();) {
    if (job->session_id == session_id) {
      job = DropLocked(job, &stats_.stale_chunks_dropped);
    } else {
      ++job;
    }
  }
  cv_.wait(lock, [&] { return state->in_flight == 0; });
}

void StreamScheduler::CancelStaleGenerations(std::uint64_t session_id,
                                             std::uint64_t live_generation) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto job = jobs_.begin(); job != jobs_.end();) {
    if (job->session_id == session_id && job->generation != live_generation) {
      job = DropLocked(job, &stats_.stale_chunks_dropped);
    } else {
      ++job;
    }
  }
}

void StreamScheduler::SetClock(const Clock* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.clock = clock;
}

void StreamScheduler::SubmitTile(std::uint64_t session_id,
                                 const tiles::TileKey& key,
                                 const tiles::TilePtr& tile,
                                 std::uint64_t generation, double confidence,
                                 double deadline_ms, std::uint64_t trace_id) {
  if (tile == nullptr) return;

  // Encode before the lock: splitting the tile is the CPU-heavy part.
  // The usable chunk's rank divides by the ALL-OR-NOTHING payload size in
  // both modes, so the progressive schedule visits tiles in exactly the
  // order the all-or-nothing one would (see header notes).
  const std::string full = codec_.Encode(*tile);
  const double usable_rank = options_.base_utility_weight *
                             std::max(confidence, 0.0) /
                             static_cast<double>(full.size());

  tiles::TilePtr usable_payload;
  tiles::TilePtr exact_payload;
  std::size_t usable_bytes = 0;
  std::size_t refine_bytes = 0;
  bool usable_is_exact = true;
  if (options_.progressive) {
    storage::ProgressiveEncoding prog = codec_.EncodeProgressive(*tile);
    auto reassembled = storage::TileCodec::Reassemble(prog.base,
                                                      prog.refinement);
    auto base_only = storage::TileCodec::Decode(prog.base);
    if (reassembled.ok() && base_only.ok()) {
      usable_bytes = prog.base.size();
      refine_bytes = prog.refinement.size();
      usable_is_exact = prog.refinement.empty();
      usable_payload = std::make_shared<const tiles::Tile>(
          usable_is_exact ? std::move(reassembled).value()
                          : std::move(base_only).value());
      if (!usable_is_exact) {
        exact_payload = std::make_shared<const tiles::Tile>(
            std::move(reassembled).value());
      }
    }
  }
  if (usable_payload == nullptr) {
    // All-or-nothing mode — or a defensive fallback if the progressive
    // pair failed to validate: one exact chunk carrying what a client
    // decodes from the full blob.
    auto decoded = storage::TileCodec::Decode(full);
    usable_payload =
        decoded.ok()
            ? std::make_shared<const tiles::Tile>(std::move(decoded).value())
            : tile;
    usable_bytes = full.size();
    refine_bytes = 0;
    usable_is_exact = true;
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (shutdown_ || it == sessions_.end() || it->second->unregistering) {
    stats_.stale_chunks_dropped += usable_is_exact ? 1 : 2;
    return;
  }
  const double now = options_.clock != nullptr ? options_.clock->NowMillis()
                                               : kNoEnqueueStamp;
  ++stats_.tiles_submitted;

  ChunkJob base;
  base.session_id = session_id;
  base.key = key;
  base.generation = generation;
  base.exact = usable_is_exact;
  base.usable = true;
  base.bytes = usable_bytes;
  base.utility_per_byte = usable_rank;
  base.enqueue_ms = now;
  base.deadline_ms = deadline_ms;
  base.seq = ++seq_counter_;
  base.trace_id = trace_id;
  base.payload = usable_payload;
  jobs_.push_back(std::move(base));
  ++stats_.chunks_enqueued;

  if (!usable_is_exact) {
    ChunkJob refine;
    refine.session_id = session_id;
    refine.key = key;
    refine.generation = generation;
    refine.exact = true;
    refine.usable = false;
    refine.awaiting_base = true;
    refine.bytes = refine_bytes;
    refine.utility_per_byte = options_.refine_utility_weight *
                              std::max(confidence, 0.0) /
                              static_cast<double>(refine_bytes);
    refine.enqueue_ms = now;
    refine.deadline_ms = deadline_ms;
    refine.seq = ++seq_counter_;
    refine.trace_id = trace_id;
    refine.payload = exact_payload;
    jobs_.push_back(std::move(refine));
    ++stats_.chunks_enqueued;
  }
  SpawnPumpLocked();
}

void StreamScheduler::RefillBudgetsLocked(double now_ms) {
  if (options_.total_bytes_per_ms > 0.0) {
    if (total_last_refill_ms_ < 0.0) total_last_refill_ms_ = now_ms;
    double earned =
        (now_ms - total_last_refill_ms_) * options_.total_bytes_per_ms;
    if (earned > 0.0) {
      total_tokens_ =
          std::min(static_cast<double>(options_.total_burst_bytes),
                   total_tokens_ + earned);
    }
    total_last_refill_ms_ = now_ms;
  }
  for (auto& [id, state] : sessions_) {
    if (!(state->limits.bytes_per_ms > 0.0)) continue;
    if (state->last_refill_ms < 0.0) state->last_refill_ms = now_ms;
    double earned = (now_ms - state->last_refill_ms) * state->limits.bytes_per_ms;
    if (earned > 0.0) {
      state->tokens = std::min(static_cast<double>(state->limits.burst_bytes),
                               state->tokens + earned);
    }
    state->last_refill_ms = now_ms;
  }
}

void StreamScheduler::ExpireLocked(double now_ms) {
  if (!(options_.max_chunk_age_ms > 0.0)) return;
  for (auto job = jobs_.begin(); job != jobs_.end();) {
    // Sentinel-stamped chunks (submitted clockless) are exempt: the stamp
    // is "unknown age", not virtual time 0, so a late-wired clock cannot
    // force-flush the backlog.
    if (job->enqueue_ms >= 0.0 &&
        now_ms - job->enqueue_ms > options_.max_chunk_age_ms) {
      job = DropLocked(job, &stats_.expired_chunks_dropped);
    } else {
      ++job;
    }
  }
}

bool StreamScheduler::EligibleLocked(const ChunkJob& job,
                                     const SessionState& state) const {
  if (state.unregistering || job.awaiting_base) return false;
  if (options_.clock == nullptr) return true;  // budgets need a time source
  const double bytes = static_cast<double>(job.bytes);
  if (state.limits.bytes_per_ms > 0.0) {
    const double burst = static_cast<double>(state.limits.burst_bytes);
    // An oversized chunk (bytes > burst) goes out at a full bucket,
    // driving the balance negative — it stalls but never deadlocks.
    if (state.tokens < bytes && !(bytes > burst && state.tokens >= burst)) {
      return false;
    }
  }
  if (options_.total_bytes_per_ms > 0.0) {
    const double burst = static_cast<double>(options_.total_burst_bytes);
    if (total_tokens_ < bytes && !(bytes > burst && total_tokens_ >= burst)) {
      return false;
    }
  }
  return true;
}

std::list<StreamScheduler::ChunkJob>::iterator StreamScheduler::SelectLocked(
    double now_ms) {
  const bool fairness = options_.fairness_share > 0.0;
  const bool deadline =
      options_.deadline_aware && options_.clock != nullptr;
  for (;;) {
    auto best = jobs_.end();
    auto edf = jobs_.end();
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      auto session = sessions_.find(it->session_id);
      if (session == sessions_.end() ||
          !EligibleLocked(*it, *session->second)) {
        continue;
      }
      if (best == jobs_.end() ||
          BetterJob(it->usable, it->utility_per_byte, it->seq,
                    best->usable, best->utility_per_byte, best->seq)) {
        best = it;
      }
      if (deadline && it->deadline_ms < kNoDeadline &&
          it->utility_per_byte >= options_.deadline_utility_bar) {
        if (edf == jobs_.end() ||
            (it->usable != edf->usable ? it->usable
             : it->deadline_ms != edf->deadline_ms
                 ? it->deadline_ms < edf->deadline_ms
                 : it->seq < edf->seq)) {
          edf = it;
        }
      }
    }
    if (best == jobs_.end()) return best;

    // EDF urgency first: chunks above the bar push earliest-deadline-first
    // within their class. Expired ones demote back to utility order so
    // overload cannot consume the urgent budget (PR 7's rule).
    if (edf != jobs_.end() && edf->usable == best->usable) {
      if (now_ms >= 0.0 && edf->deadline_ms < now_ms) {
        ++stats_.deadline_misses;
        edf->deadline_ms = kNoDeadline;
        continue;  // rescan without this deadline
      }
      ++stats_.deadline_picks;
      if (edf != best) ++stats_.deadline_promotions;
      return edf;
    }

    // Fairness slice: every 1/share picks serve the most-underserved-by-
    // bytes session's best eligible chunk (weight-normalized; credit
    // banked fractionally, carried over rounds EDF consumed).
    if (fairness && fairness_credit_ >= 1.0) {
      auto pick = jobs_.end();
      double pick_served = 0.0;
      for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
        auto session = sessions_.find(it->session_id);
        if (session == sessions_.end() ||
            !EligibleLocked(*it, *session->second)) {
          continue;
        }
        double served =
            session->second->bytes_served / session->second->limits.weight;
        bool new_session = pick == jobs_.end() || served < pick_served ||
                           (served == pick_served &&
                            it->session_id < pick->session_id);
        bool same_session =
            pick != jobs_.end() && it->session_id == pick->session_id &&
            BetterJob(it->usable, it->utility_per_byte, it->seq,
                      pick->usable, pick->utility_per_byte, pick->seq);
        if (new_session || same_session) {
          pick = it;
          pick_served = served;
        }
      }
      if (pick != jobs_.end()) {
        fairness_credit_ -= 1.0;
        ++stats_.fairness_picks;
        if (pick != best) ++stats_.fairness_promotions;
        return pick;
      }
    }
    return best;
  }
}

std::list<StreamScheduler::ChunkJob>::iterator StreamScheduler::DropLocked(
    std::list<ChunkJob>::iterator it, std::uint64_t* counter) {
  // A dropped base strands its gated refinement — a refinement can never
  // apply to a base the client did not receive — so the pair goes
  // together.
  if (it->usable && !it->exact) {
    for (auto other = jobs_.begin(); other != jobs_.end();) {
      if (other != it && other->awaiting_base &&
          other->session_id == it->session_id && other->key == it->key &&
          other->generation == it->generation) {
        other = jobs_.erase(other);
        ++*counter;
      } else {
        ++other;
      }
    }
  }
  ++*counter;
  return jobs_.erase(it);
}

std::size_t StreamScheduler::Pump() {
  std::vector<ReadyChunk> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return 0;
    const double now = options_.clock != nullptr
                           ? options_.clock->NowMillis()
                           : kNoEnqueueStamp;
    if (options_.clock != nullptr) {
      RefillBudgetsLocked(now);
      ExpireLocked(now);
    }
    const bool had_work = !jobs_.empty();
    while (ready.size() < options_.max_pump_chunks) {
      if (options_.fairness_share > 0.0) {
        fairness_credit_ =
            std::min(fairness_credit_ + options_.fairness_share,
                     static_cast<double>(options_.max_pump_chunks));
      }
      auto it = SelectLocked(now);
      if (it == jobs_.end()) break;
      SessionState* state = sessions_.at(it->session_id).get();
      if (options_.clock != nullptr) {
        if (state->limits.bytes_per_ms > 0.0) {
          state->tokens -= static_cast<double>(it->bytes);
        }
        if (options_.total_bytes_per_ms > 0.0) {
          total_tokens_ -= static_cast<double>(it->bytes);
        }
      }
      state->bytes_served += static_cast<double>(it->bytes);
      if (it->usable && !it->exact) {
        // The base is on its way: its refinement becomes eligible (and is
        // pushed after it — ready keeps pick order).
        for (auto& job : jobs_) {
          if (job.awaiting_base && job.session_id == it->session_id &&
              job.key == it->key && job.generation == it->generation) {
            job.awaiting_base = false;
            break;
          }
        }
      }
      ++stats_.chunks_pushed;
      stats_.bytes_pushed += it->bytes;
      if (it->exact) {
        ++stats_.exact_chunks_pushed;
      } else {
        ++stats_.base_chunks_pushed;
      }
      if (it->usable) {
        ++stats_.first_usable_pushes;
        // Submit-to-usable-push wait, on the scheduler's clock. Chunks
        // submitted clockless carry the sentinel stamp and are skipped.
        if (ttfu_us_ != nullptr && now >= 0.0 && it->enqueue_ms >= 0.0) {
          ttfu_us_->Record(static_cast<std::uint64_t>(std::llround(
              std::max(now - it->enqueue_ms, 0.0) * 1000.0)));
        }
      }
      ++state->in_flight;
      ++in_flight_pushes_;
      ReadyChunk chunk;
      chunk.session = state;
      chunk.key = it->key;
      chunk.payload = it->payload;
      chunk.exact = it->exact;
      chunk.generation = it->generation;
      chunk.session_id = it->session_id;
      chunk.trace_id = it->trace_id;
      chunk.push_start_ms =
          options_.trace != nullptr && it->trace_id != 0
              ? options_.trace->NowMillis()
              : 0.0;
      ready.push_back(std::move(chunk));
      jobs_.erase(it);
    }
    if (had_work && ready.empty() && !jobs_.empty()) ++stats_.budget_stalls;
  }

  for (const ReadyChunk& chunk : ready) {
    chunk.session->sink(chunk.key, chunk.payload, chunk.exact,
                        chunk.generation);
    if (options_.trace != nullptr && chunk.trace_id != 0) {
      // The span covers selection through the sink handing the chunk to
      // the session — the push itself, attributed to the publishing
      // request's trace.
      options_.trace->Record(telemetry::TraceEvent{
          chunk.trace_id, chunk.session_id, "stream.push",
          chunk.push_start_ms, options_.trace->NowMillis()});
    }
  }

  if (!ready.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ReadyChunk& chunk : ready) --chunk.session->in_flight;
    in_flight_pushes_ -= ready.size();
    cv_.notify_all();
  }
  return ready.size();
}

std::size_t StreamScheduler::Flush() {
  std::size_t total = 0;
  for (;;) {
    std::size_t pushed = Pump();
    if (pushed == 0) return total;
    total += pushed;
  }
}

void StreamScheduler::SpawnPumpLocked() {
  if (executor_ == nullptr || pump_armed_ || shutdown_ || jobs_.empty()) {
    return;
  }
  pump_armed_ = true;
  bool accepted = executor_->Submit([this] {
    while (Pump() > 0) {
    }
    std::lock_guard<std::mutex> lock(mu_);
    pump_armed_ = false;
    cv_.notify_all();
  });
  if (!accepted) pump_armed_ = false;
}

void StreamScheduler::Kick() {
  std::lock_guard<std::mutex> lock(mu_);
  SpawnPumpLocked();
}

void StreamScheduler::Shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;
  stats_.stale_chunks_dropped += jobs_.size();
  jobs_.clear();
  cv_.wait(lock, [&] { return in_flight_pushes_ == 0 && !pump_armed_; });
}

std::size_t StreamScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

StreamSchedulerStats StreamScheduler::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<StreamChunkInfo> StreamScheduler::SnapshotQueue() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StreamChunkInfo> out;
  out.reserve(jobs_.size());
  for (const ChunkJob& job : jobs_) {
    StreamChunkInfo info;
    info.session_id = job.session_id;
    info.key = job.key;
    info.generation = job.generation;
    info.exact = job.exact;
    info.bytes = job.bytes;
    info.utility_per_byte = job.utility_per_byte;
    info.enqueue_ms = job.enqueue_ms;
    info.deadline_ms = job.deadline_ms;
    out.push_back(info);
  }
  return out;
}

std::uint64_t RegisterStreamSchedulerMetrics(
    telemetry::MetricsRegistry* registry, const StreamScheduler* scheduler) {
  return registry->AddSource([scheduler](telemetry::SnapshotSink& sink) {
    const StreamSchedulerStats s = scheduler->Stats();
    sink.AddCounter("fc.stream.tiles_submitted", s.tiles_submitted);
    sink.AddCounter("fc.stream.chunks_enqueued", s.chunks_enqueued);
    sink.AddCounter("fc.stream.chunks_pushed", s.chunks_pushed);
    sink.AddCounter("fc.stream.base_chunks_pushed", s.base_chunks_pushed);
    sink.AddCounter("fc.stream.exact_chunks_pushed", s.exact_chunks_pushed);
    sink.AddCounter("fc.stream.bytes_pushed", s.bytes_pushed);
    sink.AddCounter("fc.stream.first_usable_pushes", s.first_usable_pushes);
    sink.AddCounter("fc.stream.stale_chunks_dropped", s.stale_chunks_dropped);
    sink.AddCounter("fc.stream.expired_chunks_dropped",
                    s.expired_chunks_dropped);
    sink.AddCounter("fc.stream.budget_stalls", s.budget_stalls);
    sink.AddCounter("fc.stream.deadline_picks", s.deadline_picks);
    sink.AddCounter("fc.stream.deadline_promotions", s.deadline_promotions);
    sink.AddCounter("fc.stream.deadline_misses", s.deadline_misses);
    sink.AddCounter("fc.stream.fairness_picks", s.fairness_picks);
    sink.AddCounter("fc.stream.fairness_promotions", s.fairness_promotions);
    sink.AddGauge("fc.stream.queued", static_cast<double>(scheduler->queued()));
  });
}

}  // namespace fc::core
