#include "core/shared_tile_cache.h"

namespace fc::core {

SharedTileCache::SharedTileCache(SharedTileCacheOptions options)
    : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.num_shards > options_.capacity) {
    options_.num_shards = options_.capacity;
  }
  // Ceil division: shard capacities sum to >= capacity, so the cache never
  // rejects a tile a uniform hash would admit.
  shard_capacity_ =
      (options_.capacity + options_.num_shards - 1) / options_.num_shards;
  shards_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SharedTileCache::Shard& SharedTileCache::ShardFor(const tiles::TileKey& key) {
  return *shards_[tiles::TileKeyHash()(key) % shards_.size()];
}

const SharedTileCache::Shard& SharedTileCache::ShardFor(
    const tiles::TileKey& key) const {
  return *shards_[tiles::TileKeyHash()(key) % shards_.size()];
}

tiles::TilePtr SharedTileCache::Lookup(const tiles::TileKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (options_.eviction == EvictionPolicyKind::kLru) {
    shard.order.splice(shard.order.end(), shard.order, it->second.order_it);
  }
  return it->second.tile;
}

void SharedTileCache::Insert(const tiles::TileKey& key, tiles::TilePtr tile) {
  if (tile == nullptr) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second.tile = std::move(tile);
    if (options_.eviction == EvictionPolicyKind::kLru) {
      shard.order.splice(shard.order.end(), shard.order, it->second.order_it);
    }
    return;
  }
  while (shard.map.size() >= shard_capacity_ && !shard.order.empty()) {
    shard.map.erase(shard.order.front());
    shard.order.pop_front();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  auto order_it = shard.order.insert(shard.order.end(), key);
  shard.map.emplace(key, Entry{std::move(tile), order_it});
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

Result<tiles::TilePtr> SharedTileCache::GetOrFetch(const tiles::TileKey& key,
                                                   storage::TileStore* store) {
  if (auto tile = Lookup(key)) return tile;
  FC_ASSIGN_OR_RETURN(auto tile, store->Fetch(key));
  Insert(key, tile);
  return tile;
}

bool SharedTileCache::Contains(const tiles::TileKey& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.find(key) != shard.map.end();
}

void SharedTileCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    shard->order.clear();
  }
}

std::size_t SharedTileCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

SharedTileCacheStats SharedTileCache::Stats() const {
  SharedTileCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace fc::core
