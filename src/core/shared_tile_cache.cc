#include "core/shared_tile_cache.h"

#include <algorithm>
#include <chrono>

namespace fc::core {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SharedTileCache::SharedTileCache(SharedTileCacheOptions options)
    : options_(options), codec_(options.codec) {
  if (options_.l1_bytes == 0) options_.l1_bytes = 1;
  if (options_.num_shards == 0) {
    // Auto stripe count: budgets are enforced strictly per shard, so more
    // stripes than the budget can feed leaves each shard an uncacheable
    // sliver. Cap stripes so every shard's L1 slice stays >= 4 MiB.
    constexpr std::size_t kAutoShardMinL1Bytes = 4ull << 20;
    std::size_t fed = options_.l1_bytes / kAutoShardMinL1Bytes;
    options_.num_shards = std::clamp<std::size_t>(fed, 1, 16);
  }
  // Ceil division: shard budgets sum to >= the global budget.
  shard_l1_bytes_ =
      (options_.l1_bytes + options_.num_shards - 1) / options_.num_shards;
  shard_l2_bytes_ =
      options_.l2_bytes == 0
          ? 0
          : (options_.l2_bytes + options_.num_shards - 1) / options_.num_shards;
  shards_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SharedTileCache::Shard& SharedTileCache::ShardFor(const tiles::TileKey& key) {
  return *shards_[tiles::TileKeyHash()(key) % shards_.size()];
}

const SharedTileCache::Shard& SharedTileCache::ShardFor(
    const tiles::TileKey& key) const {
  return *shards_[tiles::TileKeyHash()(key) % shards_.size()];
}

void SharedTileCache::EvictFromL2(Shard& shard) {
  auto it = shard.l2.find(shard.l2_order.front());
  shard.l2_bytes -= it->second.blob->size();
  l2_bytes_resident_.fetch_sub(it->second.blob->size(),
                               std::memory_order_relaxed);
  shard.l2.erase(it);
  shard.l2_order.pop_front();
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void SharedTileCache::CollectL1Overflow(Shard& shard,
                                        std::vector<PendingDemotion>* pending) {
  while (shard.l1_bytes > shard_l1_bytes_ && !shard.l1.empty()) {
    const tiles::TileKey victim = shard.l1_order.front();
    shard.l1_order.pop_front();
    auto it = shard.l1.find(victim);
    shard.l1_bytes -= it->second.bytes;
    l1_bytes_resident_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
    pending->push_back({victim, std::move(it->second.tile)});
    shard.l1.erase(it);
  }
}

bool SharedTileCache::AdmitToL1(Shard& shard, const tiles::TileKey& key,
                                tiles::TilePtr tile,
                                std::vector<PendingDemotion>* pending) {
  std::size_t bytes = tile->SizeBytes();
  if (bytes > shard_l1_bytes_) {
    // Larger than the whole shard budget: serve it, never cache it —
    // byte budgets are strict.
    return false;
  }
  shard.l1_bytes += bytes;
  l1_bytes_resident_.fetch_add(bytes, std::memory_order_relaxed);
  auto order_it = shard.l1_order.insert(shard.l1_order.end(), key);
  shard.l1.emplace(key, L1Entry{std::move(tile), bytes, order_it});
  // Pop victims after inserting: the new entry is at the back of the order
  // and within budget by itself, so it is never its own victim.
  CollectL1Overflow(shard, pending);
  return true;
}

void SharedTileCache::FinishDemotions(Shard& shard,
                                      std::vector<PendingDemotion> pending) {
  if (pending.empty()) return;
  if (shard_l2_bytes_ == 0) {
    // No warm tier: demotion is a true eviction, and nothing gets encoded.
    evictions_.fetch_add(pending.size(), std::memory_order_relaxed);
    return;
  }
  // Compress outside the lock — encoding is the expensive part of a
  // demotion and must not block concurrent lookups on the shard.
  std::vector<std::string> blobs;
  blobs.reserve(pending.size());
  std::uint64_t t0 = NowNs();
  for (const auto& demotion : pending) {
    blobs.push_back(codec_.Encode(*demotion.tile));
  }
  encode_ns_.fetch_add(NowNs() - t0, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(shard.mu);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const tiles::TileKey& key = pending[i].key;
    std::string& blob = blobs[i];
    if (shard.l1.count(key) > 0 || shard.l2.count(key) > 0) {
      // Re-fetched while in limbo: the newer copy owns the residency (and
      // was counted as a fresh insertion), so this stale copy's departure
      // is an eviction.
      evictions_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (blob.size() > shard_l2_bytes_) {
      // Oversized even alone: the tier cannot hold it.
      evictions_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    while (shard.l2_bytes + blob.size() > shard_l2_bytes_ &&
           !shard.l2.empty()) {
      EvictFromL2(shard);
    }
    shard.l2_bytes += blob.size();
    l2_bytes_resident_.fetch_add(blob.size(), std::memory_order_relaxed);
    auto order_it = shard.l2_order.insert(shard.l2_order.end(), key);
    shard.l2.emplace(
        key, L2Entry{std::make_shared<const std::string>(std::move(blob)),
                     order_it});
    demotions_.fetch_add(1, std::memory_order_relaxed);
  }
}

tiles::TilePtr SharedTileCache::Lookup(const tiles::TileKey& key) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const std::string> blob;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.l1.find(key);
    if (it != shard.l1.end()) {
      l1_hits_.fetch_add(1, std::memory_order_relaxed);
      if (options_.eviction == EvictionPolicyKind::kLru) {
        shard.l1_order.splice(shard.l1_order.end(), shard.l1_order,
                              it->second.order_it);
      }
      return it->second.tile;
    }
    auto l2_it = shard.l2.find(key);
    if (l2_it == shard.l2.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    // Warm hit: grab a reference and decode outside the lock. The entry
    // stays in L2 until the promotion lands, so concurrent lookups of this
    // (hot) key keep hitting the tier instead of falling through to the
    // DBMS.
    blob = l2_it->second.blob;
  }

  std::uint64_t t0 = NowNs();
  auto decoded = storage::TileCodec::Decode(*blob);
  decode_ns_.fetch_add(NowNs() - t0, std::memory_order_relaxed);

  std::vector<PendingDemotion> pending;
  tiles::TilePtr result;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Drop the L2 entry (all concurrent decoders of the same blob fail or
    // succeed alike, and a landed promotion supersedes it either way).
    auto l2_it = shard.l2.find(key);
    bool was_in_l2 = l2_it != shard.l2.end();
    if (was_in_l2) {
      shard.l2_bytes -= l2_it->second.blob->size();
      l2_bytes_resident_.fetch_sub(l2_it->second.blob->size(),
                                   std::memory_order_relaxed);
      shard.l2_order.erase(l2_it->second.order_it);
      shard.l2.erase(l2_it);
    }

    if (!decoded.ok()) {
      // Checksum-guarded decode failure: the tile is simply gone and the
      // caller falls back to the store.
      if (was_in_l2) evictions_.fetch_add(1, std::memory_order_relaxed);
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    auto tile = std::make_shared<const tiles::Tile>(std::move(decoded).value());

    auto it = shard.l1.find(key);
    if (it != shard.l1.end()) {
      // A concurrent promotion or insert landed first: the L1 copy owns
      // the residency, so the L2 copy's departure is an eviction.
      if (was_in_l2) evictions_.fetch_add(1, std::memory_order_relaxed);
      result = it->second.tile;
    } else if (AdmitToL1(shard, key, tile, &pending)) {
      // The promotion re-uses the L2 copy's residency; a vanished entry
      // (evicted under pressure mid-decode, eviction already counted)
      // makes this a fresh admission instead.
      if (!was_in_l2) insertions_.fetch_add(1, std::memory_order_relaxed);
      result = std::move(tile);
    } else {
      // Too large to re-enter L1: served, but no longer resident.
      if (was_in_l2) evictions_.fetch_add(1, std::memory_order_relaxed);
      result = std::move(tile);
    }
    l2_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  FinishDemotions(shard, std::move(pending));
  return result;
}

void SharedTileCache::Insert(const tiles::TileKey& key, tiles::TilePtr tile) {
  if (tile == nullptr) return;
  Shard& shard = ShardFor(key);
  std::vector<PendingDemotion> pending;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.l1.find(key);
    if (it != shard.l1.end()) {
      // Refresh in place, then re-enforce the budget: the replacement
      // payload may be larger than the one it displaced.
      std::size_t bytes = tile->SizeBytes();
      shard.l1_bytes = shard.l1_bytes - it->second.bytes + bytes;
      if (bytes >= it->second.bytes) {
        l1_bytes_resident_.fetch_add(bytes - it->second.bytes,
                                     std::memory_order_relaxed);
      } else {
        l1_bytes_resident_.fetch_sub(it->second.bytes - bytes,
                                     std::memory_order_relaxed);
      }
      it->second.tile = std::move(tile);
      it->second.bytes = bytes;
      if (options_.eviction == EvictionPolicyKind::kLru) {
        shard.l1_order.splice(shard.l1_order.end(), shard.l1_order,
                              it->second.order_it);
      }
      CollectL1Overflow(shard, &pending);
    } else if (auto l2_it = shard.l2.find(key); l2_it != shard.l2.end()) {
      // Fresh payload supersedes the compressed copy; the key stays
      // resident (when it fits), so this is a refresh, not a new admission.
      shard.l2_bytes -= l2_it->second.blob->size();
      l2_bytes_resident_.fetch_sub(l2_it->second.blob->size(),
                                   std::memory_order_relaxed);
      shard.l2_order.erase(l2_it->second.order_it);
      shard.l2.erase(l2_it);
      if (!AdmitToL1(shard, key, std::move(tile), &pending)) {
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (AdmitToL1(shard, key, std::move(tile), &pending)) {
      insertions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  FinishDemotions(shard, std::move(pending));
}

Result<tiles::TilePtr> SharedTileCache::GetOrFetch(const tiles::TileKey& key,
                                                   storage::TileStore* store) {
  if (auto tile = Lookup(key)) return tile;
  FC_ASSIGN_OR_RETURN(auto tile, store->Fetch(key));
  Insert(key, tile);
  return tile;
}

bool SharedTileCache::Contains(const tiles::TileKey& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.l1.count(key) > 0 || shard.l2.count(key) > 0;
}

void SharedTileCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    l1_bytes_resident_.fetch_sub(shard->l1_bytes, std::memory_order_relaxed);
    l2_bytes_resident_.fetch_sub(shard->l2_bytes, std::memory_order_relaxed);
    shard->l1.clear();
    shard->l2.clear();
    shard->l1_order.clear();
    shard->l2_order.clear();
    shard->l1_bytes = 0;
    shard->l2_bytes = 0;
  }
}

std::size_t SharedTileCache::size() const { return l1_size() + l2_size(); }

std::size_t SharedTileCache::l1_size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->l1.size();
  }
  return total;
}

std::size_t SharedTileCache::l2_size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->l2.size();
  }
  return total;
}

SharedTileCacheStats SharedTileCache::Stats() const {
  SharedTileCacheStats stats;
  stats.l1_hits = l1_hits_.load(std::memory_order_relaxed);
  stats.l2_hits = l2_hits_.load(std::memory_order_relaxed);
  stats.hits = stats.l1_hits + stats.l2_hits;
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.demotions = demotions_.load(std::memory_order_relaxed);
  stats.promotions = stats.l2_hits;
  stats.encode_ns = encode_ns_.load(std::memory_order_relaxed);
  stats.decode_ns = decode_ns_.load(std::memory_order_relaxed);
  stats.l1_bytes_resident = l1_bytes_resident_.load(std::memory_order_relaxed);
  stats.l2_bytes_resident = l2_bytes_resident_.load(std::memory_order_relaxed);
  stats.bytes_resident = stats.l1_bytes_resident + stats.l2_bytes_resident;
  return stats;
}

}  // namespace fc::core
