#include "core/shared_tile_cache.h"

#include <algorithm>
#include <chrono>

#include "common/rng.h"

namespace fc::core {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t CeilDiv(std::size_t x, std::size_t n) { return (x + n - 1) / n; }

}  // namespace

SharedTileCache::SharedTileCache(SharedTileCacheOptions options)
    : options_(options), codec_(options.codec) {
  if (options_.l1_bytes == 0) options_.l1_bytes = 1;
  if (options_.num_shards == 0) {
    // Auto stripe count: budgets are enforced strictly per shard, so more
    // stripes than the budget can feed leaves each shard an uncacheable
    // sliver. Cap stripes so every shard's L1 slice stays >= 4 MiB.
    constexpr std::size_t kAutoShardMinL1Bytes = 4ull << 20;
    std::size_t fed = options_.l1_bytes / kAutoShardMinL1Bytes;
    options_.num_shards = std::clamp<std::size_t>(fed, 1, 16);
  }
  // Ceil division: shard budgets sum to >= the global budget.
  shard_l1_bytes_ = CeilDiv(options_.l1_bytes, options_.num_shards);
  shard_l2_bytes_ =
      options_.l2_bytes == 0 ? 0 : CeilDiv(options_.l2_bytes, options_.num_shards);
  shard_quota_bytes_ =
      options_.session_quota_bytes == 0
          ? 0
          : CeilDiv(options_.session_quota_bytes, options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->admission = MakeAdmissionPolicy(options_.admission);
  }
}

std::uint64_t SharedTileCache::KeyHash(const tiles::TileKey& key) {
  return HashSeed(static_cast<std::uint64_t>(tiles::TileKeyHash()(key)));
}

SharedTileCache::Shard& SharedTileCache::ShardFor(const tiles::TileKey& key) {
  return *shards_[tiles::TileKeyHash()(key) % shards_.size()];
}

const SharedTileCache::Shard& SharedTileCache::ShardFor(
    const tiles::TileKey& key) const {
  return *shards_[tiles::TileKeyHash()(key) % shards_.size()];
}

void SharedTileCache::EvictFromL2(Shard& shard) {
  auto it = shard.l2.find(shard.l2_order.front());
  shard.l2_bytes -= it->second.blob->size();
  shard.l2.erase(it);
  shard.l2_order.pop_front();
  ++shard.counters.evictions;
}

void SharedTileCache::ChargeOwner(Shard& shard, const tiles::TileKey& key,
                                  L1Entry& entry) {
  if (entry.owner == 0) return;
  shard.session_l1_bytes[entry.owner] += entry.bytes;
  auto& order = shard.session_l1_order[entry.owner];
  entry.owner_order_it = order.insert(order.end(), key);
}

void SharedTileCache::DischargeOwner(Shard& shard, const L1Entry& entry) {
  if (entry.owner == 0) return;
  auto usage = shard.session_l1_bytes.find(entry.owner);
  if (usage != shard.session_l1_bytes.end()) {
    usage->second -= std::min(usage->second, entry.bytes);
    if (usage->second == 0) shard.session_l1_bytes.erase(usage);
  }
  auto order = shard.session_l1_order.find(entry.owner);
  if (order != shard.session_l1_order.end()) {
    order->second.erase(entry.owner_order_it);
    if (order->second.empty()) shard.session_l1_order.erase(order);
  }
}

void SharedTileCache::DetachFromL1(
    Shard& shard,
    std::unordered_map<tiles::TileKey, L1Entry, tiles::TileKeyHash>::iterator it,
    std::vector<PendingDemotion>* pending) {
  L1Entry& entry = it->second;
  shard.l1_bytes -= entry.bytes;
  DischargeOwner(shard, entry);
  shard.l1_order.erase(entry.order_it);
  pending->push_back({it->first, std::move(entry.tile), entry.owner});
  shard.l1.erase(it);
}

void SharedTileCache::CollectL1Overflow(Shard& shard,
                                        std::vector<PendingDemotion>* pending) {
  while (shard.l1_bytes > shard_l1_bytes_ && !shard.l1.empty()) {
    DetachFromL1(shard, shard.l1.find(shard.l1_order.front()), pending);
  }
}

void SharedTileCache::CollectQuotaOverflow(Shard& shard, std::uint64_t session,
                                           std::vector<PendingDemotion>* pending) {
  if (shard_quota_bytes_ == 0 || session == 0) return;
  auto over_quota = [&] {
    auto usage = shard.session_l1_bytes.find(session);
    return usage != shard.session_l1_bytes.end() &&
           usage->second > shard_quota_bytes_;
  };
  // Pop the session's own eviction queue — quota pressure never touches a
  // neighbor's residency, and victim selection costs O(victims).
  while (over_quota()) {
    auto order = shard.session_l1_order.find(session);
    if (order == shard.session_l1_order.end() || order->second.empty()) break;
    ++shard.counters.quota_evictions;
    DetachFromL1(shard, shard.l1.find(order->second.front()), pending);
  }
}

SharedTileCache::AdmitOutcome SharedTileCache::AdmitToL1(
    Shard& shard, const tiles::TileKey& key, tiles::TilePtr tile,
    const CacheAccess& access, bool bypass_filter, bool count_priority,
    std::vector<PendingDemotion>* pending) {
  const std::size_t bytes = tile->SizeBytes();
  if (bytes > shard_l1_bytes_) {
    // Larger than the whole shard budget: serve it, never cache it —
    // byte budgets are strict.
    return AdmitOutcome::kRejectedOversized;
  }
  const bool quota_active = shard_quota_bytes_ > 0 && access.session_id != 0;
  if (quota_active && bytes > shard_quota_bytes_) {
    // The session's whole share cannot hold it.
    return AdmitOutcome::kRejectedOversized;
  }
  if ((!bypass_filter || count_priority) &&
      shard.l1_bytes + bytes > shard_l1_bytes_) {
    // Admission would displace residents: ask the policy whether the
    // candidate is warmer than every prospective victim (front of the
    // eviction order, enough of them to free the candidate's bytes).
    // Quota enforcement runs first on an admit and displaces the
    // session's own oldest tiles, so simulate it here: those
    // self-victims free bytes but are not the filter's concern — it
    // protects residents from *other* sessions' cold traffic, and a
    // session over quota pays with its own tiles either way.
    std::size_t quota_excess = 0;
    if (quota_active) {
      auto usage = shard.session_l1_bytes.find(access.session_id);
      const std::size_t usage_bytes =
          usage == shard.session_l1_bytes.end() ? 0 : usage->second;
      if (usage_bytes + bytes > shard_quota_bytes_) {
        quota_excess = usage_bytes + bytes - shard_quota_bytes_;
      }
    }
    // Pass 1: the session's own oldest entries that quota eviction will
    // take (front of its per-owner queue), and the bytes they free.
    std::size_t quota_freed = 0;
    std::size_t own_consumed = 0;
    if (quota_excess > 0) {
      auto order = shard.session_l1_order.find(access.session_id);
      if (order != shard.session_l1_order.end()) {
        for (auto it = order->second.begin();
             it != order->second.end() && quota_excess > 0; ++it) {
          const L1Entry& entry = shard.l1.find(*it)->second;
          quota_freed += entry.bytes;
          quota_excess -= std::min(quota_excess, entry.bytes);
          ++own_consumed;
        }
      }
    }
    // Pass 2: with quota's freeing already banked, whatever overflow
    // remains comes off the LRU front — those are the filter's victims.
    // The per-owner queues mirror l1_order's relative order, so the first
    // own_consumed own entries met here are exactly pass 1's.
    std::vector<std::uint64_t> victims;
    std::size_t freed = quota_freed;
    for (auto it = shard.l1_order.begin();
         it != shard.l1_order.end() &&
         shard.l1_bytes - freed + bytes > shard_l1_bytes_;
         ++it) {
      const L1Entry& entry = shard.l1.find(*it)->second;
      if (own_consumed > 0 && entry.owner == access.session_id) {
        --own_consumed;  // already gone to quota eviction
        continue;
      }
      freed += entry.bytes;
      victims.push_back(KeyHash(*it));
    }
    if (!victims.empty()) {
      if (bypass_filter) {
        // The filter would have run against real foreign victims but was
        // overridden by prediction confidence: that is a priority admit.
        ++shard.counters.priority_admits;
      } else if (!shard.admission->ShouldAdmit(KeyHash(key), victims)) {
        return AdmitOutcome::kRejectedByFilter;
      }
    }
  }
  shard.l1_bytes += bytes;
  auto order_it = shard.l1_order.insert(shard.l1_order.end(), key);
  auto [entry_it, _] = shard.l1.emplace(
      key, L1Entry{std::move(tile), bytes, access.session_id, order_it, {}});
  ChargeOwner(shard, key, entry_it->second);
  // Pop victims after inserting: the new entry is at the back of the order
  // and within budget (and quota) by itself, so it is never its own victim.
  CollectQuotaOverflow(shard, access.session_id, pending);
  CollectL1Overflow(shard, pending);
  return AdmitOutcome::kAdmitted;
}

void SharedTileCache::FinishDemotions(Shard& shard,
                                      std::vector<PendingDemotion> pending) {
  if (pending.empty()) return;
  if (shard_l2_bytes_ == 0) {
    // No warm tier: demotion is a true eviction, and nothing gets encoded.
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.counters.evictions += pending.size();
    return;
  }
  // Compress outside the lock — encoding is the expensive part of a
  // demotion and must not block concurrent lookups on the shard.
  std::vector<std::string> blobs;
  blobs.reserve(pending.size());
  std::uint64_t t0 = NowNs();
  for (const auto& demotion : pending) {
    blobs.push_back(codec_.Encode(*demotion.tile));
  }
  std::uint64_t encode_ns = NowNs() - t0;

  std::lock_guard<std::mutex> lock(shard.mu);
  shard.counters.encode_ns += encode_ns;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const tiles::TileKey& key = pending[i].key;
    std::string& blob = blobs[i];
    if (shard.l1.count(key) > 0 || shard.l2.count(key) > 0) {
      // Re-fetched while in limbo: the newer copy owns the residency (and
      // was counted as a fresh insertion), so this stale copy's departure
      // is an eviction.
      ++shard.counters.evictions;
      continue;
    }
    if (blob.size() > shard_l2_bytes_) {
      // Oversized even alone: the tier cannot hold it.
      ++shard.counters.evictions;
      continue;
    }
    while (shard.l2_bytes + blob.size() > shard_l2_bytes_ &&
           !shard.l2.empty()) {
      EvictFromL2(shard);
    }
    shard.l2_bytes += blob.size();
    auto order_it = shard.l2_order.insert(shard.l2_order.end(), key);
    shard.l2.emplace(
        key, L2Entry{std::make_shared<const std::string>(std::move(blob)),
                     pending[i].owner, order_it});
    ++shard.counters.demotions;
  }
}

tiles::TilePtr SharedTileCache::Lookup(const tiles::TileKey& key,
                                       const CacheAccess& access) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const std::string> blob;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Every lookup — hit or miss — feeds the frequency model the admission
    // filter judges candidates and victims by.
    shard.admission->RecordAccess(KeyHash(key));
    auto it = shard.l1.find(key);
    if (it != shard.l1.end()) {
      ++shard.counters.l1_hits;
      if (options_.eviction == EvictionPolicyKind::kLru) {
        shard.l1_order.splice(shard.l1_order.end(), shard.l1_order,
                              it->second.order_it);
        if (it->second.owner != 0) {
          // Keep the owner queue's relative order in lockstep with
          // l1_order (the pass-1/pass-2 victim simulation relies on it).
          auto& order = shard.session_l1_order.find(it->second.owner)->second;
          order.splice(order.end(), order, it->second.owner_order_it);
        }
      }
      return it->second.tile;
    }
    auto l2_it = shard.l2.find(key);
    if (l2_it == shard.l2.end()) {
      ++shard.counters.misses;
      return nullptr;
    }
    // Warm hit: grab a reference and decode outside the lock. The entry
    // stays in L2 until the promotion lands, so concurrent lookups of this
    // (hot) key keep hitting the tier instead of falling through to the
    // DBMS.
    blob = l2_it->second.blob;
  }

  std::uint64_t t0 = NowNs();
  auto decoded = storage::TileCodec::Decode(*blob);
  std::uint64_t decode_ns = NowNs() - t0;

  std::vector<PendingDemotion> pending;
  tiles::TilePtr result;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.counters.decode_ns += decode_ns;
    // Drop the L2 entry (all concurrent decoders of the same blob fail or
    // succeed alike, and a landed promotion supersedes it either way).
    auto l2_it = shard.l2.find(key);
    bool was_in_l2 = l2_it != shard.l2.end();
    std::uint64_t l2_owner = 0;
    if (was_in_l2) {
      l2_owner = l2_it->second.owner;
      shard.l2_bytes -= l2_it->second.blob->size();
      shard.l2_order.erase(l2_it->second.order_it);
      shard.l2.erase(l2_it);
    }

    if (!decoded.ok()) {
      // Checksum-guarded decode failure: the tile is simply gone and the
      // caller falls back to the store.
      if (was_in_l2) ++shard.counters.evictions;
      ++shard.counters.misses;
      return nullptr;
    }
    auto tile = std::make_shared<const tiles::Tile>(std::move(decoded).value());

    auto it = shard.l1.find(key);
    if (it != shard.l1.end()) {
      // A concurrent promotion or insert landed first: the L1 copy owns
      // the residency, so the L2 copy's departure is an eviction.
      if (was_in_l2) ++shard.counters.evictions;
      result = it->second.tile;
    } else {
      // Promote. The tile is warm by construction (it just hit L2), so the
      // frequency filter is bypassed; ownership survives the demote cycle,
      // and a vanished entry (evicted under pressure mid-decode, eviction
      // already counted) makes this a fresh admission by the accessor.
      CacheAccess promo{was_in_l2 ? l2_owner : access.session_id,
                        access.confidence};
      auto outcome = AdmitToL1(shard, key, tile, promo, /*bypass_filter=*/true,
                               /*count_priority=*/false, &pending);
      if (outcome == AdmitOutcome::kAdmitted) {
        if (!was_in_l2) {
          ++shard.counters.admission_attempts;
          ++shard.counters.insertions;
        }
      } else {
        // Too large to re-enter L1: served, but no longer resident.
        if (was_in_l2) {
          ++shard.counters.evictions;
        } else {
          ++shard.counters.admission_attempts;
          ++shard.counters.admission_rejects;
        }
      }
      result = std::move(tile);
    }
    ++shard.counters.l2_hits;
  }
  FinishDemotions(shard, std::move(pending));
  return result;
}

void SharedTileCache::Insert(const tiles::TileKey& key, tiles::TilePtr tile,
                             const CacheAccess& access) {
  if (tile == nullptr) return;
  Shard& shard = ShardFor(key);
  std::vector<PendingDemotion> pending;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.l1.find(key);
    if (it != shard.l1.end()) {
      // Refresh in place, then re-enforce the budget and quota: the
      // replacement payload may be larger than the one it displaced, and
      // the refreshing session takes over the entry's quota charge.
      std::size_t bytes = tile->SizeBytes();
      L1Entry& entry = it->second;
      shard.l1_bytes = shard.l1_bytes - entry.bytes + bytes;
      if (entry.owner == access.session_id) {
        // Same owner: adjust the byte charge in place. The owner-queue
        // node keeps its position, staying in lockstep with l1_order —
        // under FIFO neither queue re-ages on refresh (LRU re-ages both
        // below).
        if (entry.owner != 0) {
          auto usage = shard.session_l1_bytes.find(entry.owner);
          usage->second = usage->second - entry.bytes + bytes;
        }
        entry.tile = std::move(tile);
        entry.bytes = bytes;
      } else {
        DischargeOwner(shard, entry);
        entry.owner = access.session_id;
        entry.tile = std::move(tile);
        entry.bytes = bytes;
        ChargeOwner(shard, key, entry);
      }
      if (options_.eviction == EvictionPolicyKind::kLru) {
        shard.l1_order.splice(shard.l1_order.end(), shard.l1_order,
                              entry.order_it);
        if (entry.owner != 0) {
          auto& order = shard.session_l1_order.find(entry.owner)->second;
          order.splice(order.end(), order, entry.owner_order_it);
        }
      }
      CollectQuotaOverflow(shard, access.session_id, &pending);
      CollectL1Overflow(shard, &pending);
    } else if (auto l2_it = shard.l2.find(key); l2_it != shard.l2.end()) {
      // Fresh payload supersedes the compressed copy; the key stays
      // resident (when it fits), so this is a refresh, not a new admission,
      // and — being warm — it skips the frequency filter.
      shard.l2_bytes -= l2_it->second.blob->size();
      shard.l2_order.erase(l2_it->second.order_it);
      shard.l2.erase(l2_it);
      if (AdmitToL1(shard, key, std::move(tile), access,
                    /*bypass_filter=*/true, /*count_priority=*/false,
                    &pending) != AdmitOutcome::kAdmitted) {
        ++shard.counters.evictions;
      }
    } else {
      // New tile: this is the admission decision the filter exists for.
      // High-confidence prefetch fills bypass it (priority admission —
      // counted inside AdmitToL1, and only when the filter would really
      // have judged foreign victims).
      const bool priority =
          access.confidence >= options_.admission.priority_confidence;
      const bool count_priority =
          priority &&
          options_.admission.policy != AdmissionPolicyKind::kAdmitAll;
      ++shard.counters.admission_attempts;
      auto outcome =
          AdmitToL1(shard, key, std::move(tile), access,
                    /*bypass_filter=*/priority, count_priority, &pending);
      if (outcome == AdmitOutcome::kAdmitted) {
        ++shard.counters.insertions;
      } else {
        ++shard.counters.admission_rejects;
      }
    }
  }
  FinishDemotions(shard, std::move(pending));
}

Result<tiles::TilePtr> SharedTileCache::GetOrFetch(const tiles::TileKey& key,
                                                   storage::TileStore* store,
                                                   const CacheAccess& access) {
  if (auto tile = Lookup(key, access)) return tile;
  FC_ASSIGN_OR_RETURN(auto tile, store->Fetch(key));
  Insert(key, tile, access);
  return tile;
}

tiles::TilePtr SharedTileCache::PrepareSharedFetch(
    const tiles::TileKey& key, const std::vector<CacheAccess>& subscribers,
    CacheAccess* merged) {
  double aggregate = 0.0;
  for (const auto& subscriber : subscribers) aggregate += subscriber.confidence;
  // The fill is anonymous (owner 0: a tile serving many sessions is charged
  // to no one's quota) and carries the aggregate confidence, capped to the
  // [0, 1] domain of a single access, for priority admission.
  *merged = CacheAccess{0, std::min(1.0, aggregate)};
  Shard& shard = ShardFor(key);
  if (subscribers.size() > 1) {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Lookup below records one access; each further subscriber's intent is
    // just as real, so the frequency model sees the full group — a tile
    // many sessions predict is warm by consensus before it ever lands.
    for (std::size_t i = 1; i < subscribers.size(); ++i) {
      shard.admission->RecordAccess(KeyHash(key));
    }
    shard.counters.merged_predictions += subscribers.size();
  }
  return Lookup(key, *merged);
}

Result<SharedTileCache::SharedFetch> SharedTileCache::GetOrFetchShared(
    const tiles::TileKey& key, storage::TileStore* store,
    const std::vector<CacheAccess>& subscribers) {
  CacheAccess merged;
  SharedFetch out;
  out.tile = PrepareSharedFetch(key, subscribers, &merged);
  if (out.tile != nullptr) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.counters.dedup_saved_fetches += subscribers.size();
    return out;
  }
  FC_ASSIGN_OR_RETURN(out.tile, store->Fetch(key));
  out.fetched = true;
  Insert(key, out.tile, merged);
  if (subscribers.size() > 1) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.counters.dedup_saved_fetches += subscribers.size() - 1;
  }
  return out;
}

std::vector<Result<SharedTileCache::SharedFetch>>
SharedTileCache::GetOrFetchSharedBatch(const std::vector<SharedBatchItem>& items,
                                       storage::TileStore* store) {
  std::vector<Result<SharedFetch>> out(
      items.size(), Result<SharedFetch>(Status::Internal("batch slot unset")));
  std::vector<CacheAccess> merged(items.size());
  std::vector<std::size_t> misses;  // indices into items
  for (std::size_t i = 0; i < items.size(); ++i) {
    SharedFetch hit;
    hit.tile = PrepareSharedFetch(items[i].key, items[i].subscribers, &merged[i]);
    if (hit.tile != nullptr) {
      Shard& shard = ShardFor(items[i].key);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.counters.dedup_saved_fetches += items[i].subscribers.size();
      out[i] = std::move(hit);
    } else {
      misses.push_back(i);
    }
  }
  if (misses.empty()) return out;

  // Every miss rides ONE backend round trip; the per-tile path would have
  // paid one query each.
  std::vector<tiles::TileKey> keys;
  keys.reserve(misses.size());
  for (std::size_t i : misses) keys.push_back(items[i].key);
  auto fetched = store->FetchBatch(keys);
  batches_issued_.fetch_add(1, std::memory_order_relaxed);
  batched_tiles_.fetch_add(misses.size(), std::memory_order_relaxed);
  fetch_rounds_saved_.fetch_add(misses.size() - 1, std::memory_order_relaxed);

  for (std::size_t j = 0; j < misses.size(); ++j) {
    const std::size_t i = misses[j];
    if (!fetched[j].ok()) {
      out[i] = fetched[j].status();
      continue;
    }
    SharedFetch landed;
    landed.tile = std::move(*fetched[j]);
    landed.fetched = true;
    Insert(items[i].key, landed.tile, merged[i]);
    if (items[i].subscribers.size() > 1) {
      Shard& shard = ShardFor(items[i].key);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.counters.dedup_saved_fetches += items[i].subscribers.size() - 1;
    }
    out[i] = std::move(landed);
  }
  return out;
}

void SharedTileCache::NoteStaleDrops(std::uint64_t n) {
  stale_drops_.fetch_add(n, std::memory_order_relaxed);
}

bool SharedTileCache::Contains(const tiles::TileKey& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.l1.count(key) > 0 || shard.l2.count(key) > 0;
}

void SharedTileCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->l1.clear();
    shard->l2.clear();
    shard->l1_order.clear();
    shard->l2_order.clear();
    shard->session_l1_bytes.clear();
    shard->session_l1_order.clear();
    shard->l1_bytes = 0;
    shard->l2_bytes = 0;
  }
}

std::size_t SharedTileCache::size() const { return l1_size() + l2_size(); }

std::size_t SharedTileCache::l1_size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->l1.size();
  }
  return total;
}

std::size_t SharedTileCache::l2_size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->l2.size();
  }
  return total;
}

std::size_t SharedTileCache::SessionL1Bytes(std::uint64_t session_id) const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto usage = shard->session_l1_bytes.find(session_id);
    if (usage != shard->session_l1_bytes.end()) total += usage->second;
  }
  return total;
}

SharedTileCacheStats SharedTileCache::Stats() const {
  // Snapshot every shard under its lock, acquired in index order (the only
  // multi-shard lock site, so the order cannot deadlock against anything).
  // Summing under one all-shards critical section means the totals never
  // mix one shard's pre-update counter with another's post-update one.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);

  SharedTileCacheStats stats;
  for (const auto& shard : shards_) {
    const ShardCounters& c = shard->counters;
    stats.l1_hits += c.l1_hits;
    stats.l2_hits += c.l2_hits;
    stats.misses += c.misses;
    stats.insertions += c.insertions;
    stats.evictions += c.evictions;
    stats.demotions += c.demotions;
    stats.encode_ns += c.encode_ns;
    stats.decode_ns += c.decode_ns;
    stats.admission_attempts += c.admission_attempts;
    stats.admission_rejects += c.admission_rejects;
    stats.priority_admits += c.priority_admits;
    stats.quota_evictions += c.quota_evictions;
    stats.merged_predictions += c.merged_predictions;
    stats.dedup_saved_fetches += c.dedup_saved_fetches;
    stats.l1_bytes_resident += shard->l1_bytes;
    stats.l2_bytes_resident += shard->l2_bytes;
  }
  stats.stale_drops = stale_drops_.load(std::memory_order_relaxed);
  stats.batches_issued = batches_issued_.load(std::memory_order_relaxed);
  stats.batched_tiles = batched_tiles_.load(std::memory_order_relaxed);
  stats.fetch_rounds_saved = fetch_rounds_saved_.load(std::memory_order_relaxed);
  stats.hits = stats.l1_hits + stats.l2_hits;
  stats.promotions = stats.l2_hits;
  stats.bytes_resident = stats.l1_bytes_resident + stats.l2_bytes_resident;
  return stats;
}

std::uint64_t RegisterSharedTileCacheMetrics(
    telemetry::MetricsRegistry* registry, const SharedTileCache* cache) {
  return registry->AddSource([cache](telemetry::SnapshotSink& sink) {
    const SharedTileCacheStats s = cache->Stats();
    sink.AddCounter("fc.cache.hits", s.hits);
    sink.AddCounter("fc.cache.misses", s.misses);
    sink.AddCounter("fc.cache.insertions", s.insertions);
    sink.AddCounter("fc.cache.evictions", s.evictions);
    sink.AddCounter("fc.cache.l1_hits", s.l1_hits);
    sink.AddCounter("fc.cache.l2_hits", s.l2_hits);
    sink.AddCounter("fc.cache.demotions", s.demotions);
    sink.AddCounter("fc.cache.promotions", s.promotions);
    sink.AddCounter("fc.cache.encode_ns", s.encode_ns);
    sink.AddCounter("fc.cache.decode_ns", s.decode_ns);
    sink.AddCounter("fc.cache.admission_attempts", s.admission_attempts);
    sink.AddCounter("fc.cache.admission_rejects", s.admission_rejects);
    sink.AddCounter("fc.cache.priority_admits", s.priority_admits);
    sink.AddCounter("fc.cache.quota_evictions", s.quota_evictions);
    sink.AddCounter("fc.cache.merged_predictions", s.merged_predictions);
    sink.AddCounter("fc.cache.dedup_saved_fetches", s.dedup_saved_fetches);
    sink.AddCounter("fc.cache.stale_drops", s.stale_drops);
    sink.AddCounter("fc.cache.batches_issued", s.batches_issued);
    sink.AddCounter("fc.cache.batched_tiles", s.batched_tiles);
    sink.AddCounter("fc.cache.fetch_rounds_saved", s.fetch_rounds_saved);
    sink.AddGauge("fc.cache.l1_bytes_resident",
                  static_cast<double>(s.l1_bytes_resident));
    sink.AddGauge("fc.cache.l2_bytes_resident",
                  static_cast<double>(s.l2_bytes_resident));
    sink.AddGauge("fc.cache.bytes_resident",
                  static_cast<double>(s.bytes_resident));
    sink.AddGauge("fc.cache.hit_rate", s.HitRate());
  });
}

}  // namespace fc::core
