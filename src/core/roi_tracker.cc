#include "core/roi_tracker.h"

#include <algorithm>

namespace fc::core {

const std::vector<tiles::TileKey>& RoiTracker::Update(const TileRequest& request) {
  // Algorithm 1, lines 5-14. A request without a move (session start) leaves
  // the tracker untouched.
  if (!request.move.has_value()) return roi_;
  Move move = *request.move;

  if (IsZoomIn(move)) {
    // Lines 5-7: a zoom-in opens a fresh temporary ROI seeded with T_r.
    in_flag_ = true;
    temp_roi_.clear();
    temp_roi_.push_back(request.tile);
  } else if (IsZoomOut(move)) {
    // Lines 8-12: a zoom-out commits the temporary ROI if one was open.
    if (in_flag_) {
      roi_ = temp_roi_;
      in_flag_ = false;
      temp_roi_.clear();
    }
  } else if (in_flag_) {
    // Lines 13-14: pans while collecting extend the temporary ROI.
    if (std::find(temp_roi_.begin(), temp_roi_.end(), request.tile) ==
        temp_roi_.end()) {
      temp_roi_.push_back(request.tile);
    }
  }
  return roi_;
}

void RoiTracker::Reset() {
  roi_.clear();
  temp_roi_.clear();
  in_flag_ = false;
}

}  // namespace fc::core
