#include "core/move.h"

#include "common/logging.h"

namespace fc::core {

MoveClass ClassOf(Move move) {
  switch (move) {
    case Move::kPanLeft:
    case Move::kPanRight:
    case Move::kPanUp:
    case Move::kPanDown:
      return MoveClass::kPan;
    case Move::kZoomOut:
      return MoveClass::kZoomOut;
    case Move::kZoomInNW:
    case Move::kZoomInNE:
    case Move::kZoomInSW:
    case Move::kZoomInSE:
      return MoveClass::kZoomIn;
  }
  return MoveClass::kPan;
}

bool IsPan(Move move) { return ClassOf(move) == MoveClass::kPan; }
bool IsZoomIn(Move move) { return ClassOf(move) == MoveClass::kZoomIn; }
bool IsZoomOut(Move move) { return ClassOf(move) == MoveClass::kZoomOut; }

int ZoomQuadrant(Move move) {
  FC_CHECK(IsZoomIn(move));
  return static_cast<int>(move) - static_cast<int>(Move::kZoomInNW);
}

std::string_view MoveToString(Move move) {
  switch (move) {
    case Move::kPanLeft: return "left";
    case Move::kPanRight: return "right";
    case Move::kPanUp: return "up";
    case Move::kPanDown: return "down";
    case Move::kZoomOut: return "out";
    case Move::kZoomInNW: return "in_nw";
    case Move::kZoomInNE: return "in_ne";
    case Move::kZoomInSW: return "in_sw";
    case Move::kZoomInSE: return "in_se";
  }
  return "?";
}

Result<Move> MoveFromString(std::string_view name) {
  for (Move m : AllMoves()) {
    if (MoveToString(m) == name) return m;
  }
  return Status::InvalidArgument("unknown move: " + std::string(name));
}

const std::vector<Move>& AllMoves() {
  static const std::vector<Move> kMoves = {
      Move::kPanLeft,  Move::kPanRight, Move::kPanUp,
      Move::kPanDown,  Move::kZoomOut,  Move::kZoomInNW,
      Move::kZoomInNE, Move::kZoomInSW, Move::kZoomInSE,
  };
  return kMoves;
}

std::optional<tiles::TileKey> ApplyMove(const tiles::TileKey& from, Move move,
                                        const tiles::PyramidSpec& spec) {
  tiles::TileKey to = from;
  switch (move) {
    case Move::kPanLeft: to = from.Shifted(-1, 0); break;
    case Move::kPanRight: to = from.Shifted(1, 0); break;
    case Move::kPanUp: to = from.Shifted(0, -1); break;
    case Move::kPanDown: to = from.Shifted(0, 1); break;
    case Move::kZoomOut:
      if (from.level == 0) return std::nullopt;
      to = from.Parent();
      break;
    case Move::kZoomInNW:
    case Move::kZoomInNE:
    case Move::kZoomInSW:
    case Move::kZoomInSE:
      if (from.level + 1 >= spec.num_levels) return std::nullopt;
      to = from.Child(ZoomQuadrant(move));
      break;
  }
  if (!spec.Valid(to)) return std::nullopt;
  return to;
}

std::optional<Move> MoveBetween(const tiles::TileKey& from,
                                const tiles::TileKey& to) {
  if (to.level == from.level) {
    if (to.y == from.y && to.x == from.x - 1) return Move::kPanLeft;
    if (to.y == from.y && to.x == from.x + 1) return Move::kPanRight;
    if (to.x == from.x && to.y == from.y - 1) return Move::kPanUp;
    if (to.x == from.x && to.y == from.y + 1) return Move::kPanDown;
    return std::nullopt;
  }
  if (to.level == from.level - 1 && from.level > 0 && from.Parent() == to) {
    return Move::kZoomOut;
  }
  if (to.level == from.level + 1 && to.Parent() == from) {
    int q = to.QuadrantInParent();
    return static_cast<Move>(static_cast<int>(Move::kZoomInNW) + q);
  }
  return std::nullopt;
}

std::vector<Move> ValidMoves(const tiles::TileKey& from,
                             const tiles::PyramidSpec& spec) {
  std::vector<Move> moves;
  for (Move m : AllMoves()) {
    if (ApplyMove(from, m, spec).has_value()) moves.push_back(m);
  }
  return moves;
}

}  // namespace fc::core
