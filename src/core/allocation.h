// Cache allocation strategies: how the per-request prefetch budget `k` is
// split between the AB and SB recommenders given the predicted analysis
// phase (paper section 4.4, refined by the observed results in 5.4.3).

#ifndef FORECACHE_CORE_ALLOCATION_H_
#define FORECACHE_CORE_ALLOCATION_H_

#include <memory>
#include <string_view>

#include "core/request.h"

namespace fc::core {

/// How many of the k prefetch slots each model may fill, and which model's
/// predictions take priority when interleaving.
struct Allocation {
  std::size_t ab_slots = 0;
  std::size_t sb_slots = 0;
  bool ab_first = true;  ///< AB's list is consumed before SB's.
};

class AllocationStrategy {
 public:
  virtual ~AllocationStrategy() = default;
  virtual std::string_view name() const = 0;
  virtual Allocation Allocate(AnalysisPhase phase, std::size_t k) const = 0;
};

/// Paper section 4.4: Navigation -> all AB; Sensemaking -> all SB;
/// Foraging -> equal split.
class PhaseAllocationStrategy : public AllocationStrategy {
 public:
  std::string_view name() const override { return "phase"; }
  Allocation Allocate(AnalysisPhase phase, std::size_t k) const override;
};

/// Paper section 5.4.3 (the final engine, tuned on observed accuracies):
/// Sensemaking -> SB only; otherwise the first min(4, k) predictions come
/// from AB and the remaining k-4 from SB.
class HybridAllocationStrategy : public AllocationStrategy {
 public:
  explicit HybridAllocationStrategy(std::size_t ab_head = 4) : ab_head_(ab_head) {}
  std::string_view name() const override { return "hybrid"; }
  Allocation Allocate(AnalysisPhase phase, std::size_t k) const override;

 private:
  std::size_t ab_head_;
};

/// Ablation strategies: a fixed split regardless of phase.
class FixedAllocationStrategy : public AllocationStrategy {
 public:
  /// `ab_fraction` in [0,1]: share of k given to AB (1 = AB only).
  FixedAllocationStrategy(std::string_view name, double ab_fraction);
  std::string_view name() const override { return name_; }
  Allocation Allocate(AnalysisPhase phase, std::size_t k) const override;

 private:
  std::string name_;
  double ab_fraction_;
};

}  // namespace fc::core

#endif  // FORECACHE_CORE_ALLOCATION_H_
