#include "core/request.h"

#include "common/csv.h"
#include "common/string_utils.h"

namespace fc::core {

std::string_view AnalysisPhaseToString(AnalysisPhase phase) {
  switch (phase) {
    case AnalysisPhase::kForaging: return "foraging";
    case AnalysisPhase::kSensemaking: return "sensemaking";
    case AnalysisPhase::kNavigation: return "navigation";
  }
  return "?";
}

Result<AnalysisPhase> AnalysisPhaseFromString(std::string_view name) {
  if (name == "foraging") return AnalysisPhase::kForaging;
  if (name == "sensemaking") return AnalysisPhase::kSensemaking;
  if (name == "navigation") return AnalysisPhase::kNavigation;
  return Status::InvalidArgument("unknown phase: " + std::string(name));
}

SessionHistory::SessionHistory(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SessionHistory::Add(const TileRequest& request) {
  entries_.push_back(request);
  while (entries_.size() > capacity_) entries_.pop_front();
}

void SessionHistory::Clear() { entries_.clear(); }

std::optional<TileRequest> SessionHistory::Last() const {
  if (entries_.empty()) return std::nullopt;
  return entries_.back();
}

std::vector<int> SessionHistory::MoveSymbols() const {
  std::vector<int> symbols;
  symbols.reserve(entries_.size());
  for (const auto& r : entries_) {
    if (r.move.has_value()) symbols.push_back(static_cast<int>(*r.move));
  }
  return symbols;
}

std::vector<int> Trace::MoveSymbols() const {
  std::vector<int> symbols;
  symbols.reserve(records.size());
  for (const auto& rec : records) {
    if (rec.request.move.has_value()) {
      symbols.push_back(static_cast<int>(*rec.request.move));
    }
  }
  return symbols;
}

Status WriteTracesCsv(const std::string& path, const std::vector<Trace>& traces) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"user_id", "task_id", "seq", "level", "x", "y", "move", "phase"});
  for (const auto& trace : traces) {
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
      const auto& rec = trace.records[i];
      rows.push_back({
          trace.user_id,
          StrFormat("%d", trace.task_id),
          StrFormat("%zu", i),
          StrFormat("%d", rec.request.tile.level),
          StrFormat("%lld", static_cast<long long>(rec.request.tile.x)),
          StrFormat("%lld", static_cast<long long>(rec.request.tile.y)),
          rec.request.move ? std::string(MoveToString(*rec.request.move)) : "",
          std::string(AnalysisPhaseToString(rec.phase)),
      });
    }
  }
  return CsvWriteFile(path, rows);
}

Result<std::vector<Trace>> ReadTracesCsv(const std::string& path) {
  FC_ASSIGN_OR_RETURN(auto rows, CsvReadFile(path));
  if (rows.empty()) return Status::InvalidArgument("empty trace file: " + path);
  std::vector<Trace> traces;
  // Rows are grouped by (user_id, task_id) in file order.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != 8) {
      return Status::Corruption(
          StrFormat("trace row %zu has %zu fields, want 8", i, row.size()));
    }
    FC_ASSIGN_OR_RETURN(auto task_id, ParseInt(row[1]));
    FC_ASSIGN_OR_RETURN(auto level, ParseInt(row[3]));
    FC_ASSIGN_OR_RETURN(auto x, ParseInt(row[4]));
    FC_ASSIGN_OR_RETURN(auto y, ParseInt(row[5]));
    TraceRecord rec;
    rec.request.tile =
        tiles::TileKey{static_cast<int>(level), x, y};
    if (!row[6].empty()) {
      FC_ASSIGN_OR_RETURN(auto move, MoveFromString(row[6]));
      rec.request.move = move;
    }
    FC_ASSIGN_OR_RETURN(rec.phase, AnalysisPhaseFromString(row[7]));
    if (traces.empty() || traces.back().user_id != row[0] ||
        traces.back().task_id != static_cast<int>(task_id)) {
      Trace t;
      t.user_id = row[0];
      t.task_id = static_cast<int>(task_id);
      traces.push_back(std::move(t));
    }
    traces.back().records.push_back(std::move(rec));
  }
  return traces;
}

}  // namespace fc::core
