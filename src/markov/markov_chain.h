// MarkovChain: the paper's n-th-order action model (Algorithm 2).
//
// A "Markov-n" chain has one state per length-n move sequence and learns
// transition frequencies F[(v_{i-n},...,v_{i-1}) -> v_i] from training
// traces, smoothed with Kneser-Ney. Implemented as an order-(n+1) NGramModel.

#ifndef FORECACHE_MARKOV_MARKOV_CHAIN_H_
#define FORECACHE_MARKOV_MARKOV_CHAIN_H_

#include <vector>

#include "common/result.h"
#include "markov/ngram_model.h"

namespace fc::markov {

class MarkovChain {
 public:
  /// `history_length` is the paper's n (state = last n moves). InvalidArgument
  /// via NGramModel::Make on bad parameters.
  static Result<MarkovChain> Make(std::size_t vocab_size, std::size_t history_length,
                                  double discount = 0.75);

  std::size_t history_length() const { return history_length_; }
  std::size_t vocab_size() const { return model_.vocab_size(); }

  /// Algorithm 2, PROCESSTRACES: accumulates transition frequencies from a
  /// set of move-sequence traces, then finalizes smoothing.
  Status Train(const std::vector<std::vector<int>>& traces);

  /// Adds one trace's counts without finalizing (incremental training).
  Status Observe(const std::vector<int>& trace);

  /// Recomputes smoothing after Observe calls.
  void Finalize() { model_.Finalize(); }

  /// P(next move | recent moves); uses the last `history_length` entries.
  double TransitionProbability(const std::vector<int>& recent_moves, int next) const;

  /// Full next-move distribution (sums to 1).
  std::vector<double> NextMoveDistribution(const std::vector<int>& recent_moves) const;

  /// Number of distinct states (length-n sequences) observed in training.
  std::size_t ObservedStates() const { return model_.DistinctGrams(history_length_); }

  const NGramModel& model() const { return model_; }

 private:
  MarkovChain(NGramModel model, std::size_t history_length)
      : model_(std::move(model)), history_length_(history_length) {}

  NGramModel model_;
  std::size_t history_length_;
};

}  // namespace fc::markov

#endif  // FORECACHE_MARKOV_MARKOV_CHAIN_H_
