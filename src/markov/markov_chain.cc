#include "markov/markov_chain.h"

namespace fc::markov {

Result<MarkovChain> MarkovChain::Make(std::size_t vocab_size,
                                      std::size_t history_length, double discount) {
  FC_ASSIGN_OR_RETURN(auto model,
                      NGramModel::Make(vocab_size, history_length + 1, discount));
  return MarkovChain(std::move(model), history_length);
}

Status MarkovChain::Train(const std::vector<std::vector<int>>& traces) {
  for (const auto& trace : traces) {
    FC_RETURN_IF_ERROR(model_.ObserveSequence(trace));
  }
  model_.Finalize();
  return Status::OK();
}

Status MarkovChain::Observe(const std::vector<int>& trace) {
  return model_.ObserveSequence(trace);
}

double MarkovChain::TransitionProbability(const std::vector<int>& recent_moves,
                                          int next) const {
  return model_.Probability(recent_moves, next);
}

std::vector<double> MarkovChain::NextMoveDistribution(
    const std::vector<int>& recent_moves) const {
  return model_.Distribution(recent_moves);
}

}  // namespace fc::markov
