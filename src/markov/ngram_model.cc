#include "markov/ngram_model.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_utils.h"

namespace fc::markov {

namespace {
constexpr std::size_t kBitsPerSymbol = 5;
constexpr std::size_t kMaxOrder = 12;
constexpr std::size_t kMaxVocab = 32;
}  // namespace

NGramModel::NGramModel(std::size_t vocab_size, std::size_t order, double discount)
    : vocab_size_(vocab_size), order_(order), discount_(discount) {
  counts_.resize(order_);
  cont_.resize(order_);
}

Result<NGramModel> NGramModel::Make(std::size_t vocab_size, std::size_t order,
                                    double discount) {
  if (vocab_size == 0 || vocab_size > kMaxVocab) {
    return Status::InvalidArgument(
        StrFormat("vocab_size must be in [1, %zu], got %zu", kMaxVocab, vocab_size));
  }
  if (order == 0 || order > kMaxOrder) {
    return Status::InvalidArgument(
        StrFormat("order must be in [1, %zu], got %zu", kMaxOrder, order));
  }
  if (discount <= 0.0 || discount >= 1.0) {
    return Status::InvalidArgument("discount must lie in (0, 1)");
  }
  return NGramModel(vocab_size, order, discount);
}

std::uint64_t NGramModel::PackGram(const int* symbols, std::size_t len) {
  // Length tag in the top bits keeps grams of different lengths distinct.
  std::uint64_t key = static_cast<std::uint64_t>(len) << 60;
  for (std::size_t i = 0; i < len; ++i) {
    key = (key & 0xF000000000000000ULL) |
          (((key & 0x0FFFFFFFFFFFFFFFULL) << kBitsPerSymbol) |
           static_cast<std::uint64_t>(symbols[i]));
  }
  return key;
}

Status NGramModel::ObserveSequence(const std::vector<int>& sequence) {
  for (int s : sequence) {
    if (s < 0 || static_cast<std::size_t>(s) >= vocab_size_) {
      return Status::InvalidArgument(StrFormat("symbol %d outside vocabulary", s));
    }
  }
  finalized_ = false;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    // All m-grams ending at position i.
    std::size_t max_m = std::min(order_, i + 1);
    for (std::size_t m = 1; m <= max_m; ++m) {
      std::uint64_t key = PackGram(&sequence[i + 1 - m], m);
      ++counts_[m - 1][key];
    }
  }
  return Status::OK();
}

void NGramModel::Finalize() {
  if (finalized_) return;
  for (auto& c : cont_) c.clear();
  // Continuation count of an m-gram g: number of distinct symbols v such
  // that the (m+1)-gram v.g was observed. Derived from order-(m+1) counts.
  for (std::size_t m = 1; m < order_; ++m) {
    for (const auto& [key, count] : counts_[m]) {  // (m+1)-grams
      (void)count;
      // Strip the leftmost symbol: keep the low m*kBitsPerSymbol bits,
      // retag with length m.
      std::uint64_t payload = key & 0x0FFFFFFFFFFFFFFFULL;
      std::uint64_t mask = (m * kBitsPerSymbol >= 60)
                               ? 0x0FFFFFFFFFFFFFFFULL
                               : ((1ULL << (m * kBitsPerSymbol)) - 1);
      std::uint64_t suffix = (static_cast<std::uint64_t>(m) << 60) | (payload & mask);
      ++cont_[m - 1][suffix];
    }
  }
  finalized_ = true;
}

std::uint64_t NGramModel::RawCount(const std::vector<int>& gram) const {
  if (gram.empty() || gram.size() > order_) return 0;
  std::uint64_t key = PackGram(gram.data(), gram.size());
  const auto& map = counts_[gram.size() - 1];
  auto it = map.find(key);
  return it == map.end() ? 0 : it->second;
}

std::size_t NGramModel::DistinctGrams(std::size_t m) const {
  if (m == 0 || m > order_) return 0;
  return counts_[m - 1].size();
}

double NGramModel::ProbabilityAtOrder(const int* context, std::size_t context_len,
                                      int next, std::size_t m) const {
  FC_CHECK(m >= 1);
  const double uniform = 1.0 / static_cast<double>(vocab_size_);

  if (m == 1) {
    // Unigram level: continuation counts when available (true KN), raw
    // counts for an order-1 model.
    const auto& table = (order_ > 1) ? cont_[0] : counts_[0];
    double total = 0.0;
    std::size_t distinct = 0;
    for (const auto& [key, c] : table) {
      (void)key;
      total += static_cast<double>(c);
      ++distinct;
    }
    if (total <= 0.0) return uniform;
    int sym = next;
    std::uint64_t key = PackGram(&sym, 1);
    auto it = table.find(key);
    double c = it == table.end() ? 0.0 : static_cast<double>(it->second);
    // Discount-interpolate with the uniform distribution so unseen symbols
    // keep non-zero mass.
    double lambda = discount_ * static_cast<double>(distinct) / total;
    return std::max(c - discount_, 0.0) / total + lambda * uniform;
  }

  // Assemble the m-gram = last (m-1) context symbols + next.
  const std::size_t ctx_used = m - 1;
  FC_CHECK(context_len >= ctx_used);
  const int* ctx = context + (context_len - ctx_used);

  // Highest order uses raw counts; lower orders use continuation counts.
  const auto& table = (m == order_) ? counts_[m - 1] : cont_[m - 1];

  // Denominator: total mass for this context; also count distinct followers.
  double denom = 0.0;
  std::size_t followers = 0;
  std::vector<int> gram(ctx, ctx + ctx_used);
  gram.push_back(0);
  for (std::size_t w = 0; w < vocab_size_; ++w) {
    gram[ctx_used] = static_cast<int>(w);
    std::uint64_t key = PackGram(gram.data(), m);
    auto it = table.find(key);
    if (it != table.end() && it->second > 0) {
      denom += static_cast<double>(it->second);
      ++followers;
    }
  }

  double lower = ProbabilityAtOrder(context, context_len, next, m - 1);
  if (denom <= 0.0) return lower;  // unseen context: full backoff

  gram[ctx_used] = next;
  std::uint64_t key = PackGram(gram.data(), m);
  auto it = table.find(key);
  double c = it == table.end() ? 0.0 : static_cast<double>(it->second);
  double lambda = discount_ * static_cast<double>(followers) / denom;
  return std::max(c - discount_, 0.0) / denom + lambda * lower;
}

double NGramModel::Probability(const std::vector<int>& context, int next) const {
  FC_CHECK_MSG(finalized_ || order_ == 1, "call Finalize() before Probability()");
  if (next < 0 || static_cast<std::size_t>(next) >= vocab_size_) return 0.0;
  std::size_t usable = std::min(context.size(), order_ - 1);
  const int* ctx = context.data() + (context.size() - usable);
  return ProbabilityAtOrder(ctx, usable, next, usable + 1);
}

std::vector<double> NGramModel::Distribution(const std::vector<int>& context) const {
  std::vector<double> dist(vocab_size_, 0.0);
  double total = 0.0;
  for (std::size_t w = 0; w < vocab_size_; ++w) {
    dist[w] = Probability(context, static_cast<int>(w));
    total += dist[w];
  }
  if (total > 0.0) {
    for (double& p : dist) p /= total;
  }
  return dist;
}

}  // namespace fc::markov
