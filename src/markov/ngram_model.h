// Interpolated Kneser-Ney n-gram language model (the BerkeleyLM stand-in).
//
// ForeCache's Action-Based recommender is an n-th-order Markov chain over
// the 9-move vocabulary, smoothed with Kneser-Ney (paper section 4.3.2,
// Algorithm 2). Symbols are small integers in [0, vocab_size).

#ifndef FORECACHE_MARKOV_NGRAM_MODEL_H_
#define FORECACHE_MARKOV_NGRAM_MODEL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace fc::markov {

/// Interpolated Kneser-Ney model of a fixed maximum order.
///
/// "Order" is the gram length: an order-4 model conditions on 3 previous
/// symbols (the paper's Markov3). Counts are accumulated with
/// ObserveSequence; Finalize() derives continuation counts; Probability()
/// then evaluates the smoothed distribution.
class NGramModel {
 public:
  /// InvalidArgument if vocab_size is 0 or > 32, order is 0 or > 12, or
  /// discount outside (0, 1).
  static Result<NGramModel> Make(std::size_t vocab_size, std::size_t order,
                                 double discount = 0.75);

  std::size_t vocab_size() const { return vocab_size_; }
  std::size_t order() const { return order_; }
  double discount() const { return discount_; }

  /// Accumulates all m-gram counts (m = 1..order) from one symbol sequence.
  /// Symbols outside [0, vocab_size) are rejected.
  Status ObserveSequence(const std::vector<int>& sequence);

  /// Derives continuation counts. Must be called after all ObserveSequence
  /// calls and before Probability/Distribution. Idempotent.
  void Finalize();

  /// P(next | context) under interpolated Kneser-Ney. Uses the last
  /// (order-1) symbols of `context` (shorter contexts back off naturally).
  /// Uniform over the vocabulary when the model has seen no data.
  double Probability(const std::vector<int>& context, int next) const;

  /// The full next-symbol distribution for a context (sums to 1).
  std::vector<double> Distribution(const std::vector<int>& context) const;

  /// Raw count of the full m-gram `gram` (context+next), 0 if unseen.
  std::uint64_t RawCount(const std::vector<int>& gram) const;

  /// Total number of distinct observed grams of length `m` (1-based).
  std::size_t DistinctGrams(std::size_t m) const;

 private:
  NGramModel(std::size_t vocab_size, std::size_t order, double discount);

  // Packs up to `order` symbols, 5 bits each, plus a length tag.
  static std::uint64_t PackGram(const int* symbols, std::size_t len);

  // Recursive interpolated KN evaluation at order m (gram length).
  double ProbabilityAtOrder(const int* context, std::size_t context_len, int next,
                            std::size_t m) const;

  std::size_t vocab_size_;
  std::size_t order_;
  double discount_;
  bool finalized_ = false;

  // counts_[m-1]: full m-gram counts, keyed by packed gram.
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> counts_;
  // cont_[m-1]: continuation counts N1+(. gram) for m-grams (m < order).
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> cont_;
};

}  // namespace fc::markov

#endif  // FORECACHE_MARKOV_NGRAM_MODEL_H_
