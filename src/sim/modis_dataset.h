// ModisDatasetBuilder: reproduces the paper's data pipeline (section 5.1)
// against the synthetic terrain:
//
//   1. "load" the VIS and SWIR band arrays for each composite day;
//   2. run Query 1 — join(S_VIS, S_SWIR) |> apply(ndsi_func) |> store — in
//      the embedded array engine;
//   3. flatten the week into a single 2D NDSI array with attributes
//      (ndsi_min, ndsi_avg, ndsi_max, land_mask), the study's four
//      attributes (section 5.1.1);
//   4. build the tile pyramid with min/avg/max/max aggregation and compute
//      signature metadata.

#ifndef FORECACHE_SIM_MODIS_DATASET_H_
#define FORECACHE_SIM_MODIS_DATASET_H_

#include <memory>

#include "array/array_store.h"
#include "common/result.h"
#include "sim/terrain.h"
#include "tiles/pyramid.h"
#include "vision/signature.h"

namespace fc::sim {

struct ModisDatasetOptions {
  TerrainOptions terrain;
  int composite_days = 3;  ///< Days folded into the min/avg/max composite.

  int num_levels = 6;
  std::int64_t tile_size = 32;

  /// Signature configuration for tile metadata.
  vision::SignatureToolboxOptions toolbox;
  std::size_t codebook_training_tiles = 48;
  std::uint64_t seed = 42;
};

/// The fully prepared study dataset.
struct ModisDataset {
  std::shared_ptr<tiles::TilePyramid> pyramid;
  std::shared_ptr<vision::SignatureToolbox> toolbox;
  ModisDatasetOptions options;
};

class ModisDatasetBuilder {
 public:
  explicit ModisDatasetBuilder(ModisDatasetOptions options = {});

  /// Runs the full pipeline. When `catalog` is non-null the intermediate
  /// arrays (bands, per-day NDSI, composite) are stored in it under the
  /// names SVIS_d<i>, SSWIR_d<i>, NDSI_d<i>, NDSI.
  Result<ModisDataset> Build(array::ArrayStore* catalog = nullptr) const;

  /// The paper's NDSI user-defined function.
  static double NdsiFunc(double visible, double short_wave_infrared);

 private:
  ModisDatasetOptions options_;
};

/// A small default configuration used throughout tests and benches.
ModisDatasetOptions DefaultStudyDataset();

}  // namespace fc::sim

#endif  // FORECACHE_SIM_MODIS_DATASET_H_
