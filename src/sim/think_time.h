// Per-phase think-time distributions for the simulated study users.
//
// The paper models user think time explicitly: prefetching only wins when
// the fill lands inside the gap between two moves, and that gap depends on
// what the user is doing. Foraging is rapid coarse scanning (short dwells),
// navigation is a deliberate zoom with a moderate pause, and sensemaking is
// the long analytical dwell over detailed tiles. This model turns those
// observations into per-phase distributions the harnesses sample inter-move
// gaps from, and into the priors that seed the server layer's
// ThinkTimeEstimator (server/think_time.h) before it has observed enough
// gaps of its own — the sim layer is the canonical source of what "typical"
// think time per phase means.
//
// The server cannot link against the sim layer, so the priors cross the
// boundary as a plain array (PhasePriorMs) wired through ServerOptions by
// whoever assembles the stack (benches, tests, SessionManager embeddings).

#ifndef FORECACHE_SIM_THINK_TIME_H_
#define FORECACHE_SIM_THINK_TIME_H_

#include <array>

#include "common/rng.h"
#include "core/request.h"

namespace fc::sim {

/// Mean think time per analysis phase, plus a shared relative spread.
/// Means are virtual SimClock milliseconds.
struct PhaseThinkTimeModel {
  /// Rapid coarse scanning: the user glances and pans on.
  double foraging_mean_ms = 800.0;
  /// Deliberate zoom toward (or away from) a candidate region.
  double navigation_mean_ms = 1500.0;
  /// The long analytical dwell over detailed tiles.
  double sensemaking_mean_ms = 3000.0;
  /// Relative standard deviation applied to every phase's Gaussian.
  double rel_stddev = 0.35;
  /// Floor on sampled gaps: no human issues back-to-back moves faster.
  double min_ms = 100.0;
};

/// The model's mean gap for `phase`.
double MeanThinkMs(const PhaseThinkTimeModel& model, core::AnalysisPhase phase);

/// One sampled inter-move gap for `phase`: a Gaussian at the phase mean
/// with rel_stddev spread, truncated below at min_ms. Deterministic for a
/// seeded Rng.
double SampleThinkMs(const PhaseThinkTimeModel& model,
                     core::AnalysisPhase phase, Rng& rng);

/// The per-phase prior means indexed by AnalysisPhase, in the layout
/// server::ThinkTimeOptions::phase_prior_ms expects.
std::array<double, core::kNumPhases> PhasePriorMs(
    const PhaseThinkTimeModel& model);

}  // namespace fc::sim

#endif  // FORECACHE_SIM_THINK_TIME_H_
