#include "sim/terrain.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"

namespace fc::sim {

std::vector<MountainRange> DefaultStudyRanges() {
  // Three analogues in distinct regions. The "Rockies" are large and snowy
  // (task 1); the "Alps" are compact (task 2); the "Andes" are a long thin
  // north-south ridge (task 3) — so sensemaking there rewards panning, the
  // behavior the study observed for South America.
  return {
      MountainRange{"rockies", 0.22, 0.28, 0.16, 0.075, -1.0, 1.00},
      MountainRange{"alps", 0.68, 0.30, 0.085, 0.045, 0.35, 0.85},
      MountainRange{"andes", 0.30, 0.74, 0.20, 0.035, 1.45, 0.90},
  };
}

Terrain::Terrain(TerrainOptions options) : options_(std::move(options)) {
  if (options_.ranges.empty()) options_.ranges = DefaultStudyRanges();
}

namespace {

// Smoothstep interpolation weight.
double Fade(double t) { return t * t * (3.0 - 2.0 * t); }

// Hash of lattice point -> [0,1].
double LatticeValue(std::int64_t ix, std::int64_t iy, std::uint64_t seed,
                    std::uint64_t salt) {
  std::uint64_t h = fc::HashSeed(
      fc::CombineSeeds(fc::CombineSeeds(seed, salt),
                       (static_cast<std::uint64_t>(ix) << 32) ^
                           static_cast<std::uint64_t>(iy & 0xFFFFFFFF)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

double Terrain::ValueNoise(double x, double y, std::uint64_t salt) const {
  double fx = std::floor(x);
  double fy = std::floor(y);
  auto ix = static_cast<std::int64_t>(fx);
  auto iy = static_cast<std::int64_t>(fy);
  double tx = Fade(x - fx);
  double ty = Fade(y - fy);
  double v00 = LatticeValue(ix, iy, options_.seed, salt);
  double v10 = LatticeValue(ix + 1, iy, options_.seed, salt);
  double v01 = LatticeValue(ix, iy + 1, options_.seed, salt);
  double v11 = LatticeValue(ix + 1, iy + 1, options_.seed, salt);
  double a = v00 * (1 - tx) + v10 * tx;
  double b = v01 * (1 - tx) + v11 * tx;
  return a * (1 - ty) + b * ty;
}

double Terrain::Fbm(double x, double y, std::uint64_t salt) const {
  double total = 0.0;
  double amplitude = 1.0;
  double frequency = options_.noise_base_frequency;
  double norm = 0.0;
  for (int o = 0; o < options_.noise_octaves; ++o) {
    total += amplitude * ValueNoise(x * frequency, y * frequency,
                                    salt + static_cast<std::uint64_t>(o) * 1315423911ULL);
    norm += amplitude;
    amplitude *= 0.5;
    frequency *= 2.0;
  }
  return norm > 0.0 ? total / norm : 0.0;
}

double Terrain::Elevation(std::int64_t x, std::int64_t y) const {
  double u = (static_cast<double>(x) + 0.5) / static_cast<double>(options_.width);
  double v = (static_cast<double>(y) + 0.5) / static_cast<double>(options_.height);

  // Fractal base relief in [0, noise_amplitude].
  double elevation = options_.noise_amplitude * Fbm(u, v, /*salt=*/1);

  // Ridge contributions: rotated anisotropic Gaussians modulated by noise so
  // ranges have distinct peaks separated by lower passes (real ranges are
  // not uniformly snow-capped; the peak/pass alternation is what makes the
  // study's "find the snowiest tiles" tasks genuine searches).
  for (const auto& range : options_.ranges) {
    double dx = u - range.center_x;
    double dy = v - range.center_y;
    double cos_a = std::cos(range.angle_rad);
    double sin_a = std::sin(range.angle_rad);
    double along = dx * cos_a + dy * sin_a;
    double across = -dx * sin_a + dy * cos_a;
    double g = std::exp(-0.5 * (along * along / (range.length * range.length) +
                                across * across / (range.width * range.width)));
    double peaks = Fbm(u * 9.0, v * 9.0, /*salt=*/7);
    double ridge_noise = 0.30 + 0.70 * peaks * peaks;  // sharpen the peaks
    elevation += range.height * g * ridge_noise;
  }
  return elevation;
}

double Terrain::CellJitter(std::int64_t x, std::int64_t y, int day,
                           std::uint64_t salt) const {
  std::uint64_t h = fc::HashSeed(fc::CombineSeeds(
      options_.seed ^ salt,
      fc::CombineSeeds((static_cast<std::uint64_t>(x) << 20) ^
                           static_cast<std::uint64_t>(y),
                       static_cast<std::uint64_t>(day) + 101)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
}

bool Terrain::IsLand(std::int64_t x, std::int64_t y) const {
  return Elevation(x, y) > options_.sea_level;
}

double Terrain::SnowFraction(std::int64_t x, std::int64_t y, int day) const {
  if (!IsLand(x, y)) return 0.0;
  double elevation = Elevation(x, y);
  // Northern cells (small y = high latitude) keep a lower snow line —
  // mirrors the US/Canada vs South America contrast in the study data.
  double v = (static_cast<double>(y) + 0.5) / static_cast<double>(options_.height);
  double latitude_drop = 0.12 * (1.0 - v);
  // The composite day shifts the line slightly (weather over the week).
  double day_shift = 0.015 * static_cast<double>(day % 3) - 0.015;
  double line = options_.snow_line - latitude_drop + day_shift;
  double t = (elevation - line) / 0.25;  // soft transition band
  double frac = Clamp(t, 0.0, 1.0);
  // Patchiness within the transition band.
  if (frac > 0.0 && frac < 1.0) {
    double n = CellJitter(x, y, day, /*salt=*/3);
    frac = Clamp(frac + 0.25 * (n - 0.5), 0.0, 1.0);
  }
  return frac;
}

double Terrain::VisReflectance(std::int64_t x, std::int64_t y, int day) const {
  double snow = SnowFraction(x, y, day);
  // Snow is highly reflective in visible light; bare land and water are not.
  double base = IsLand(x, y) ? 0.18 : 0.08;
  double vis = base + 0.72 * snow;
  double noise = 0.02 * (CellJitter(x, y, day, /*salt=*/11) - 0.5);
  return Clamp(vis + noise, 0.01, 1.0);
}

double Terrain::SwirReflectance(std::int64_t x, std::int64_t y, int day) const {
  double snow = SnowFraction(x, y, day);
  // Snow absorbs short-wave infrared; bare land reflects moderately.
  double base = IsLand(x, y) ? 0.30 : 0.10;
  double swir = base * (1.0 - 0.85 * snow) + 0.02;
  double noise = 0.02 * (CellJitter(x, y, day, /*salt=*/13) - 0.5);
  return Clamp(swir + noise, 0.01, 1.0);
}

}  // namespace fc::sim
