// Synthetic terrain: the MODIS data stand-in.
//
// The paper's dataset is one week of NASA MODIS reflectance over the globe,
// reduced to NDSI snow cover. What the prediction engine actually depends on
// is spatial structure: snow concentrates in a few elongated mountain-range
// clusters (Rockies / Alps / Andes were the study's ROIs) over a mostly
// snow-free background. This module synthesizes a deterministic elevation
// field with three such ranges via fractal value noise, and derives VIS and
// SWIR band reflectances from a simple snow model so that the NDSI
// (VIS-SWIR)/(VIS+SWIR) computed downstream shows the same cluster
// structure.

#ifndef FORECACHE_SIM_TERRAIN_H_
#define FORECACHE_SIM_TERRAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace fc::sim {

/// An elongated mountain range: a rotated Gaussian ridge in unit coordinates
/// (x right, y down; (0,0) = north-west corner of the dataset).
struct MountainRange {
  std::string name;
  double center_x = 0.5;
  double center_y = 0.5;
  double length = 0.2;       ///< Half-extent along the ridge axis.
  double width = 0.05;       ///< Half-extent across the ridge axis.
  double angle_rad = 0.0;    ///< Ridge orientation (0 = horizontal).
  double height = 1.0;       ///< Peak elevation contribution.
};

struct TerrainOptions {
  std::int64_t width = 1024;
  std::int64_t height = 1024;
  std::uint64_t seed = 42;

  /// Fractal base detail.
  int noise_octaves = 5;
  double noise_base_frequency = 4.0;
  double noise_amplitude = 0.35;

  /// Ranges; empty = the default three (study analogues of the Rockies,
  /// Alps, and Andes, in distinct quadrants).
  std::vector<MountainRange> ranges;

  /// Elevation above which snow appears (before latitude adjustment).
  double snow_line = 0.55;
  /// Sea level: cells below are ocean (land_mask = 0).
  double sea_level = 0.12;
};

/// Default study geography: three ranges in separate regions of the map.
std::vector<MountainRange> DefaultStudyRanges();

/// Deterministic elevation + band synthesizer.
class Terrain {
 public:
  explicit Terrain(TerrainOptions options);

  const TerrainOptions& options() const { return options_; }

  /// Elevation in [0, ~1.5] at integer cell coordinates.
  double Elevation(std::int64_t x, std::int64_t y) const;

  /// Snow fraction in [0, 1] for one day (day shifts the snow line slightly,
  /// modelling the week of MODIS composites).
  double SnowFraction(std::int64_t x, std::int64_t y, int day) const;

  /// True if the cell is land.
  bool IsLand(std::int64_t x, std::int64_t y) const;

  /// Visible-light band reflectance for one day (snow is bright in VIS).
  double VisReflectance(std::int64_t x, std::int64_t y, int day) const;

  /// Short-wave-infrared reflectance (snow is dark in SWIR).
  double SwirReflectance(std::int64_t x, std::int64_t y, int day) const;

 private:
  // Lattice value noise in [0,1] at arbitrary scale.
  double ValueNoise(double x, double y, std::uint64_t salt) const;
  double Fbm(double x, double y, std::uint64_t salt) const;
  // Deterministic per-cell measurement jitter.
  double CellJitter(std::int64_t x, std::int64_t y, int day, std::uint64_t salt) const;

  TerrainOptions options_;
};

}  // namespace fc::sim

#endif  // FORECACHE_SIM_TERRAIN_H_
