// Study task definitions (paper section 5.3.3): find `tiles_needed` tiles at
// a target zoom level, inside a geographic region, whose NDSI meets a
// threshold.

#ifndef FORECACHE_SIM_TASK_H_
#define FORECACHE_SIM_TASK_H_

#include <string>
#include <vector>

#include "sim/terrain.h"
#include "tiles/tile_key.h"

namespace fc::sim {

struct Task {
  int id = 1;
  std::string name;

  /// Search region in unit map coordinates ([0,1]^2, y down).
  double x0 = 0.0;
  double x1 = 1.0;
  double y0 = 0.0;
  double y1 = 1.0;

  int target_level = 4;        ///< Zoom level the answer tiles must be at.
  double ndsi_threshold = 0.5; ///< Minimum max-NDSI for an answer tile.
  int tiles_needed = 4;

  /// Answer tiles a participant typically confirms per deep excursion:
  /// selective tasks ("highest NDSI") force one careful confirmation per
  /// dive; permissive ones (task 3's low threshold over a dense ridge) let
  /// users bank several neighbors at once. Shapes the section 5.3.4
  /// request-count ordering (35 / 25 / 17).
  int finds_per_excursion = 1;

  /// True if the tile's center lies inside the region.
  bool Contains(const tiles::TileKey& key, const tiles::PyramidSpec& spec) const;

  /// Unit-coordinate center of the region.
  double CenterX() const { return 0.5 * (x0 + x1); }
  double CenterY() const { return 0.5 * (y0 + y1); }
};

/// The three study tasks, bound to the default terrain ranges and scaled to
/// a pyramid with `num_levels` levels. Analogues of:
///   1. continental US, level 6, highest NDSI       (Rockies)
///   2. western Europe, level 8, NDSI >= 0.5        (Alps)
///   3. South America, level 6, NDSI > 0.25         (Andes)
std::vector<Task> DefaultStudyTasks(const TerrainOptions& terrain, int num_levels);

/// Unit-coordinate center of a tile.
void TileCenterUnit(const tiles::TileKey& key, const tiles::PyramidSpec& spec,
                    double* ux, double* uy);

}  // namespace fc::sim

#endif  // FORECACHE_SIM_TASK_H_
