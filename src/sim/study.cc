#include "sim/study.h"

#include "common/string_utils.h"

namespace fc::sim {

std::vector<core::Trace> Study::TracesForTask(int task_id) const {
  std::vector<core::Trace> out;
  for (const auto& t : traces) {
    if (t.task_id == task_id) out.push_back(t);
  }
  return out;
}

std::vector<core::Trace> Study::TracesExcludingUser(
    const std::string& user_id) const {
  std::vector<core::Trace> out;
  for (const auto& t : traces) {
    if (t.user_id != user_id) out.push_back(t);
  }
  return out;
}

std::vector<std::string> Study::UserIds() const {
  std::vector<std::string> ids;
  for (const auto& t : traces) {
    if (ids.empty() || ids.back() != t.user_id) {
      bool seen = false;
      for (const auto& id : ids) {
        if (id == t.user_id) {
          seen = true;
          break;
        }
      }
      if (!seen) ids.push_back(t.user_id);
    }
  }
  return ids;
}

Result<Study> RunStudyOnDataset(ModisDataset dataset,
                                const StudyOptions& study_options) {
  Study study;
  study.dataset = std::move(dataset);
  study.options = study_options;
  study.tasks = DefaultStudyTasks(study.dataset.options.terrain,
                                  study.dataset.options.num_levels);

  for (int u = 0; u < study_options.num_users; ++u) {
    std::string user_id = StrFormat("user%02d", u + 1);
    AgentPersonality personality = MakePersonality(u, study_options.seed);
    UserAgent agent(study.dataset.pyramid.get(), personality);
    for (const auto& task : study.tasks) {
      FC_ASSIGN_OR_RETURN(auto trace, agent.RunTask(task, user_id));
      study.traces.push_back(std::move(trace));
    }
  }
  return study;
}

Result<Study> RunStudy(const ModisDatasetOptions& dataset_options,
                       const StudyOptions& study_options) {
  ModisDatasetBuilder builder(dataset_options);
  FC_ASSIGN_OR_RETURN(auto dataset, builder.Build());
  return RunStudyOnDataset(std::move(dataset), study_options);
}

}  // namespace fc::sim
