#include "sim/task.h"

#include <algorithm>
#include <cmath>

namespace fc::sim {

void TileCenterUnit(const tiles::TileKey& key, const tiles::PyramidSpec& spec,
                    double* ux, double* uy) {
  *ux = (static_cast<double>(key.x) + 0.5) /
        static_cast<double>(spec.TilesX(key.level));
  *uy = (static_cast<double>(key.y) + 0.5) /
        static_cast<double>(spec.TilesY(key.level));
}

bool Task::Contains(const tiles::TileKey& key,
                    const tiles::PyramidSpec& spec) const {
  double ux = 0.0;
  double uy = 0.0;
  TileCenterUnit(key, spec, &ux, &uy);
  return ux >= x0 && ux <= x1 && uy >= y0 && uy <= y1;
}

namespace {

// Bounding box of a rotated elliptical ridge, inflated by `margin`.
Task RegionAroundRange(const MountainRange& range, double margin) {
  double cos_a = std::abs(std::cos(range.angle_rad));
  double sin_a = std::abs(std::sin(range.angle_rad));
  double half_x = range.length * cos_a + range.width * sin_a + margin;
  double half_y = range.length * sin_a + range.width * cos_a + margin;
  Task t;
  t.x0 = std::max(0.0, range.center_x - half_x);
  t.x1 = std::min(1.0, range.center_x + half_x);
  t.y0 = std::max(0.0, range.center_y - half_y);
  t.y1 = std::min(1.0, range.center_y + half_y);
  return t;
}

}  // namespace

std::vector<Task> DefaultStudyTasks(const TerrainOptions& terrain, int num_levels) {
  auto ranges = terrain.ranges.empty() ? DefaultStudyRanges() : terrain.ranges;
  // Scale the paper's levels (6 and 8 of 9) to this pyramid: tasks 1 and 3
  // sit two levels above the finest, task 2 one level above.
  int deep = std::max(1, num_levels - 1);   // task 2 ("level 8")
  int mid = std::max(1, num_levels - 2);    // tasks 1 and 3 ("level 6")

  std::vector<Task> tasks;

  Task t1 = RegionAroundRange(ranges[0], 0.22);
  t1.id = 1;
  t1.name = "continental_us_highest_ndsi";
  t1.target_level = mid;
  t1.ndsi_threshold = 0.65;  // "highest NDSI values": selective hunting
  t1.finds_per_excursion = 1;
  tasks.push_back(t1);

  Task t2 = RegionAroundRange(ranges.size() > 1 ? ranges[1] : ranges[0], 0.07);
  t2.id = 2;
  t2.name = "western_europe_ndsi_ge_0.5";
  t2.target_level = deep;
  t2.ndsi_threshold = 0.22;
  t2.finds_per_excursion = 2;
  tasks.push_back(t2);

  Task t3 = RegionAroundRange(ranges.size() > 2 ? ranges[2] : ranges[0], 0.06);
  t3.id = 3;
  t3.name = "south_america_ndsi_gt_0.25";
  t3.target_level = mid;
  t3.ndsi_threshold = 0.20;
  t3.finds_per_excursion = 2;  // dense, easy ridge: several accepts per dive
  tasks.push_back(t3);

  return tasks;
}

}  // namespace fc::sim
