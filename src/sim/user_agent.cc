#include "sim/user_agent.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"

namespace fc::sim {

using core::AnalysisPhase;
using core::Move;
using tiles::TileKey;

AgentPersonality MakePersonality(int user_index, std::uint64_t study_seed) {
  Rng rng(CombineSeeds(study_seed, static_cast<std::uint64_t>(user_index) + 1000));
  AgentPersonality p;
  // Mixture matching the study's observed variety (Figure 8c-e groupings):
  // most users scan one or two levels below the root; error rates and
  // patience vary per user.
  p.forage_level = 1 + static_cast<int>(rng.UniformUint32(2));  // 1 or 2
  p.mistake_rate = rng.UniformDouble(0.04, 0.11);
  p.pan_vs_zoomout = rng.UniformDouble(0.45, 0.8);
  p.threshold_slack = rng.UniformDouble(0.04, 0.12);
  p.patience = 2 + static_cast<int>(rng.UniformUint32(3));  // 2..4
  p.tiles_per_roi = rng.Bernoulli(0.3) ? 2 : 1;
  p.compare_pans = 1 + static_cast<int>(rng.UniformUint32(3));  // 1..3
  p.perception_noise = rng.UniformDouble(0.06, 0.16);
  p.visual_affinity = rng.UniformDouble(0.3, 0.9);
  p.seed = rng.NextUint64();
  return p;
}

UserAgent::UserAgent(const tiles::TilePyramid* pyramid,
                     AgentPersonality personality)
    : pyramid_(pyramid), personality_(personality) {}

AnalysisPhase UserAgent::PhaseOf(Mode mode) const {
  switch (mode) {
    case Mode::kScanning: return AnalysisPhase::kForaging;
    case Mode::kGoingDown: return AnalysisPhase::kNavigation;
    case Mode::kInspecting: return AnalysisPhase::kSensemaking;
    case Mode::kGoingUp: return AnalysisPhase::kNavigation;
  }
  return AnalysisPhase::kForaging;
}

double UserAgent::TileMax(const TileKey& key) const {
  auto md = pyramid_->metadata().Get(key);
  if (!md.ok()) return -1.0;
  return (*md)->max;
}

double UserAgent::VisualSimilarity(const TileKey& a, const TileKey& b) const {
  auto sig_a =
      pyramid_->metadata().GetSignature(a, vision::SignatureKind::kHistogram);
  auto sig_b =
      pyramid_->metadata().GetSignature(b, vision::SignatureKind::kHistogram);
  if (!sig_a.ok() || !sig_b.ok()) return 0.0;
  double chi2 = ChiSquaredDistance(**sig_a, **sig_b);
  return 1.0 / (1.0 + chi2);
}

double UserAgent::Promise(const TileKey& key, const Task& task) const {
  const auto& spec = pyramid_->spec();
  if (key.level > task.target_level) return -1.0;
  int delta = task.target_level - key.level;
  std::int64_t x0 = key.x << delta;
  std::int64_t y0 = key.y << delta;
  std::int64_t span = std::int64_t{1} << delta;
  std::int64_t tx = spec.TilesX(task.target_level);
  std::int64_t ty = spec.TilesY(task.target_level);
  double best = -1.0;
  for (std::int64_t y = y0; y < std::min(y0 + span, ty); ++y) {
    for (std::int64_t x = x0; x < std::min(x0 + span, tx); ++x) {
      TileKey detail{task.target_level, x, y};
      if (!task.Contains(detail, spec)) continue;
      if (visited_detail_.count(detail) > 0) continue;
      best = std::max(best, TileMax(detail));
    }
  }
  if (best < 0.0 || key.level >= task.target_level) return best;
  // Coarse levels are judged by eye from aggregated renderings; perturb the
  // estimate deterministically per (user, task, tile).
  std::uint64_t h = HashSeed(CombineSeeds(
      perception_salt_,
      CombineSeeds(static_cast<std::uint64_t>(key.level),
                   (static_cast<std::uint64_t>(key.x) << 24) ^
                       static_cast<std::uint64_t>(key.y))));
  double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
  return best + personality_.perception_noise * (2.0 * unit - 1.0);
}

Result<core::Trace> UserAgent::RunTask(const Task& task,
                                       const std::string& user_id) {
  if (task.target_level < 1 || task.target_level >= pyramid_->spec().num_levels) {
    return Status::InvalidArgument("task target level outside pyramid");
  }
  visited_detail_.clear();
  found_.clear();
  perception_salt_ = CombineSeeds(personality_.seed,
                                  static_cast<std::uint64_t>(task.id) * 31 + 7);
  std::set<TileKey> visited_coarse;

  const auto& spec = pyramid_->spec();
  const int forage =
      std::max(0, std::min(personality_.forage_level, task.target_level - 1));
  // Per-dive accept quota: the task's typical count, nudged by personality.
  const int roi_quota = task.finds_per_excursion + (personality_.tiles_per_roi - 1);
  Rng rng(CombineSeeds(personality_.seed, static_cast<std::uint64_t>(task.id)));

  core::Trace trace;
  trace.user_id = user_id;
  trace.task_id = task.id;

  TileKey current{0, 0, 0};
  Mode mode = Mode::kScanning;
  int unpromising_streak = 0;
  int found_this_descent = 0;
  int pans_this_descent = 0;
  std::vector<TileKey> found_this_roi;

  // When leaving an ROI, the accepted tiles' neighborhoods count as seen so
  // the next excursion explores new ground.
  auto mark_roi_exhausted = [&]() {
    std::int64_t tx = spec.TilesX(task.target_level);
    std::int64_t ty = spec.TilesY(task.target_level);
    for (const auto& tile : found_this_roi) {
      // Mark the accepted tile and its 4-neighborhood (not the full 3x3:
      // diagonal peaks stay discoverable on a later excursion).
      const std::pair<std::int64_t, std::int64_t> kCross[] = {
          {0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}};
      for (const auto& [dx, dy] : kCross) {
        TileKey nb = tile.Shifted(dx, dy);
        if (nb.x >= 0 && nb.x < tx && nb.y >= 0 && nb.y < ty) {
          visited_detail_.insert(nb);
        }
      }
    }
    found_this_roi.clear();
  };

  auto emit = [&](std::optional<Move> move, AnalysisPhase phase) {
    core::TraceRecord rec;
    rec.request.tile = current;
    rec.request.move = move;
    rec.phase = phase;
    trace.records.push_back(rec);
  };
  emit(std::nullopt, AnalysisPhase::kForaging);

  // Picks the child quadrant with the best promise (random tiebreak).
  auto best_child_move = [&](const TileKey& key) -> std::optional<Move> {
    if (key.level + 1 >= spec.num_levels) return std::nullopt;
    double best = -2.0;
    std::vector<Move> best_moves;
    for (int q = 0; q < 4; ++q) {
      TileKey child = key.Child(q);
      if (!spec.Valid(child)) continue;
      double p = Promise(child, task);
      if (p > best + 1e-12) {
        best = p;
        best_moves.assign(1, static_cast<Move>(static_cast<int>(Move::kZoomInNW) + q));
      } else if (std::abs(p - best) <= 1e-12) {
        best_moves.push_back(static_cast<Move>(static_cast<int>(Move::kZoomInNW) + q));
      }
    }
    if (best_moves.empty() || best < 0.0) return std::nullopt;
    return best_moves[rng.UniformUint32(static_cast<std::uint32_t>(best_moves.size()))];
  };

  // Pans one step toward the task region's center.
  auto pan_toward_region = [&](const TileKey& key) -> std::optional<Move> {
    double ux = 0.0;
    double uy = 0.0;
    TileCenterUnit(key, spec, &ux, &uy);
    double dx = task.CenterX() - ux;
    double dy = task.CenterY() - uy;
    std::vector<Move> ordered;
    if (std::abs(dx) >= std::abs(dy)) {
      ordered = {dx > 0 ? Move::kPanRight : Move::kPanLeft,
                 dy > 0 ? Move::kPanDown : Move::kPanUp};
    } else {
      ordered = {dy > 0 ? Move::kPanDown : Move::kPanUp,
                 dx > 0 ? Move::kPanRight : Move::kPanLeft};
    }
    for (Move m : ordered) {
      if (core::ApplyMove(key, m, spec).has_value()) return m;
    }
    return std::nullopt;
  };

  for (int step = 0; step < kMaxSteps; ++step) {
    // Normalize mode against the current level (mistake moves can shift it).
    if (mode == Mode::kGoingDown && current.level >= task.target_level) {
      mode = Mode::kInspecting;
      unpromising_streak = 0;
      found_this_descent = 0;
      pans_this_descent = 0;
    }
    if (mode == Mode::kGoingUp && current.level <= forage) mode = Mode::kScanning;
    if (mode == Mode::kInspecting && current.level < task.target_level) {
      mode = Mode::kGoingDown;
    }

    // Inspect the tile under the viewport.
    if (mode == Mode::kInspecting) {
      visited_detail_.insert(current);
      bool qualifies = task.Contains(current, spec) &&
                       TileMax(current) >= task.ndsi_threshold &&
                       found_.count(current) == 0;
      if (qualifies && found_this_descent < roi_quota) {
        found_.insert(current);
        found_this_roi.push_back(current);
        ++found_this_descent;
        if (static_cast<int>(found_.size()) >= task.tiles_needed) break;
      }
      // Retreat only after accepting this descent's quota AND comparing
      // enough neighbors to trust the answer (the Sensemaking pans).
      if (found_this_descent >= roi_quota &&
          pans_this_descent >= personality_.compare_pans) {
        mode = Mode::kGoingUp;
        mark_roi_exhausted();
      }
    } else if (mode == Mode::kScanning) {
      visited_coarse.insert(current);
    }

    std::optional<Move> chosen;

    // Off-policy exploration/mistakes (never deeper than the target level).
    if (rng.Bernoulli(personality_.mistake_rate)) {
      std::vector<Move> valid;
      for (Move m : core::ValidMoves(current, spec)) {
        auto to = core::ApplyMove(current, m, spec);
        if (to->level <= task.target_level) valid.push_back(m);
      }
      if (!valid.empty()) {
        chosen = valid[rng.UniformUint32(static_cast<std::uint32_t>(valid.size()))];
      }
    }

    if (!chosen.has_value()) {
      switch (mode) {
        case Mode::kScanning: {
          if (current.level < forage) {
            // Still descending to scanning altitude: zoom toward promise.
            chosen = best_child_move(current);
            if (!chosen.has_value()) chosen = pan_toward_region(current);
            break;
          }
          double here = Promise(current, task);
          // Users dive on fairly weak evidence (a hint of orange is enough
          // to zoom in and check); the eagerness constant keeps descents
          // frequent relative to forage pans.
          constexpr double kDescendEagerness = 0.12;
          if (here >= task.ndsi_threshold - personality_.threshold_slack -
                          kDescendEagerness) {
            mode = Mode::kGoingDown;
            chosen = best_child_move(current);
            if (chosen.has_value()) break;
            mode = Mode::kScanning;  // nothing below after all
          }
          // Scan: prefer the most promising unvisited neighbor.
          double best_score = -2.0;
          std::optional<Move> best_move;
          for (Move m : {Move::kPanLeft, Move::kPanRight, Move::kPanUp,
                         Move::kPanDown}) {
            auto to = core::ApplyMove(current, m, spec);
            if (!to.has_value()) continue;
            double score = Promise(*to, task);
            if (visited_coarse.count(*to) > 0) score -= 0.15;
            if (score > best_score) {
              best_score = score;
              best_move = m;
            }
          }
          if (best_move.has_value() && best_score > 0.0) {
            chosen = best_move;
          } else if (current.level > 0 &&
                     !rng.Bernoulli(personality_.pan_vs_zoomout)) {
            chosen = Move::kZoomOut;  // widen the view (still foraging)
          } else {
            chosen = pan_toward_region(current);
            if (!chosen.has_value()) chosen = best_move;
          }
          break;
        }
        case Mode::kGoingDown: {
          chosen = best_child_move(current);
          if (!chosen.has_value()) {
            mode = Mode::kGoingUp;  // subtree exhausted
            chosen = Move::kZoomOut;
          }
          break;
        }
        case Mode::kInspecting: {
          // Pan to the most promising neighbor at this level. Unvisited
          // tiles are strongly preferred, but comparison pans may revisit
          // (users look back and forth when weighing candidates). Neighbors
          // that look about equally interesting are chosen between at
          // whim — humans do not sweep in a fixed direction.
          constexpr double kVisualTieBand = 0.30;
          struct PanOption {
            Move move;
            double score;
            double tile_max;
            bool unvisited;
          };
          std::vector<PanOption> pan_options;
          for (Move m : {Move::kPanLeft, Move::kPanRight, Move::kPanUp,
                         Move::kPanDown}) {
            auto to = core::ApplyMove(current, m, spec);
            if (!to.has_value()) continue;
            bool unvisited = visited_detail_.count(*to) == 0;
            // Blend of "looks like what I am studying" (content similarity
            // to the tile under the viewport) and "has lots of snow". The
            // blend picks WHICH neighbor to inspect; whether to keep
            // inspecting at all is decided on raw snow content below.
            double score =
                personality_.visual_affinity * VisualSimilarity(current, *to) +
                (1.0 - personality_.visual_affinity) * TileMax(*to);
            if (task.Contains(*to, spec)) score += 0.25;
            if (!unvisited) score -= 1.5;
            pan_options.push_back({m, score, TileMax(*to), unvisited});
          }
          double best_score = -4.0;
          std::optional<Move> best_move;
          double best_tile_max = -1.0;
          bool best_unvisited = false;
          for (const auto& opt : pan_options) {
            if (opt.score > best_score) best_score = opt.score;
          }
          std::vector<const PanOption*> near_best;
          for (const auto& opt : pan_options) {
            if (opt.score >= best_score - kVisualTieBand) near_best.push_back(&opt);
          }
          if (!near_best.empty()) {
            const PanOption* pick = near_best[rng.UniformUint32(
                static_cast<std::uint32_t>(near_best.size()))];
            best_move = pick->move;
            best_tile_max = pick->tile_max;
            best_unvisited = pick->unvisited;
          }
          // Attention is bounded: after the quota plus a few extra
          // comparisons the region is considered understood.
          bool exhausted_attention =
              pans_this_descent >= personality_.compare_pans + 4;
          bool promising =
              best_move.has_value() && best_unvisited && !exhausted_attention &&
              best_tile_max >= task.ndsi_threshold - personality_.threshold_slack;
          // Comparison pans target tiles not yet inspected — there is
          // nothing left to learn from a tile already studied this session.
          bool owes_compares = pans_this_descent < personality_.compare_pans &&
                               found_this_descent > 0 && best_unvisited;
          if (promising || (owes_compares && best_move.has_value())) {
            if (promising) unpromising_streak = 0;
            chosen = best_move;
          } else if (best_move.has_value() && best_unvisited &&
                     !exhausted_attention &&
                     unpromising_streak < personality_.patience) {
            ++unpromising_streak;
            chosen = best_move;
          } else {
            mode = Mode::kGoingUp;
            mark_roi_exhausted();
            chosen = Move::kZoomOut;
          }
          break;
        }
        case Mode::kGoingUp: {
          chosen = Move::kZoomOut;
          break;
        }
      }
    }

    if (!chosen.has_value()) break;  // completely stuck; end the session
    auto next = core::ApplyMove(current, *chosen, spec);
    if (!next.has_value()) break;
    if (mode == Mode::kInspecting && core::IsPan(*chosen)) ++pans_this_descent;
    AnalysisPhase phase = PhaseOf(mode);
    current = *next;
    emit(*chosen, phase);
  }

  return trace;
}

}  // namespace fc::sim
