// UserAgent: a stochastic stand-in for one study participant.
//
// The agent executes a search task with the explicit three-phase behavior
// the paper's analysis model describes (section 4.2.1): it *forages* at a
// coarse zoom level scanning for snowy regions, *navigates* down to a
// candidate region, *sensemakes* by panning across detailed tiles and
// checking them against the task threshold, then navigates back up and
// repeats until it has found the required tiles. Each emitted request is
// labeled with the agent's ground-truth phase — replacing the paper's
// hand-labeling of study traces.

#ifndef FORECACHE_SIM_USER_AGENT_H_
#define FORECACHE_SIM_USER_AGENT_H_

#include <set>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "core/request.h"
#include "sim/task.h"
#include "tiles/pyramid.h"

namespace fc::sim {

/// Per-user behavioral parameters; varied across the 18 simulated subjects.
struct AgentPersonality {
  /// Level the agent prefers for scanning (coarse; paper users hovered a
  /// few levels below the root).
  int forage_level = 2;

  /// Probability of an off-policy (exploratory/erroneous) move per step.
  double mistake_rate = 0.05;

  /// In a dead region: probability of panning onward vs zooming out.
  double pan_vs_zoomout = 0.6;

  /// How far below the task threshold a tile still looks "promising".
  double threshold_slack = 0.08;

  /// Unpromising sensemaking pans tolerated before retreating.
  int patience = 3;

  /// Answer tiles accepted per deep excursion before retreating to forage
  /// again. The study's participants confirmed roughly one answer per
  /// descent (Figure 9 shows four separate dives for four tiles).
  int tiles_per_roi = 1;

  /// Neighboring tiles compared at the detail level before the agent trusts
  /// an accepted answer and retreats — the Sensemaking behavior proper
  /// ("analyzes neighboring tiles to determine if the pattern in the data
  /// supports or refutes her hypothesis", section 4.2.1).
  int compare_pans = 2;

  /// Std-dev of the perception error on coarse-level promise judgments.
  /// Users eyeball aggregated renderings and sometimes dive into regions
  /// that turn out uninteresting — failed excursions are a big part of why
  /// real sessions are long.
  double perception_noise = 0.12;

  /// Weight of content-similarity (vs raw snow intensity) when choosing
  /// which neighbor to inspect next during Sensemaking. The paper's user
  /// model holds that people navigate toward tiles that *look like* what
  /// they are studying (section 4.3.3); high-affinity users embody that.
  double visual_affinity = 0.5;

  std::uint64_t seed = 1;
};

/// Deterministic personality for study subject `user_index` (0-based).
AgentPersonality MakePersonality(int user_index, std::uint64_t study_seed);

class UserAgent {
 public:
  /// `pyramid` must outlive the agent. Promise estimates read the pyramid's
  /// per-tile metadata (the agent "sees" rendered tiles; metadata max-NDSI
  /// is the programmatic stand-in for the user seeing orange snow pixels).
  UserAgent(const tiles::TilePyramid* pyramid, AgentPersonality personality);

  /// Runs one task to completion (or the step cap) and returns the labeled
  /// request trace.
  Result<core::Trace> RunTask(const Task& task, const std::string& user_id);

  /// Hard cap on requests per trace (guards pathological personalities).
  static constexpr int kMaxSteps = 160;

 private:
  enum class Mode { kScanning, kGoingDown, kInspecting, kGoingUp };

  core::AnalysisPhase PhaseOf(Mode mode) const;

  /// Highest max-NDSI among the tile's unvisited in-region descendants at
  /// the task's target level, perturbed by deterministic perception noise
  /// (the tile's *perceived* promise).
  double Promise(const tiles::TileKey& key, const Task& task) const;

  /// Metadata max-NDSI of one tile (-1 when metadata is missing).
  double TileMax(const tiles::TileKey& key) const;

  /// Content similarity of two tiles in [0, 1], from their histogram
  /// signatures (1 = identical distributions). 0 when metadata is missing.
  double VisualSimilarity(const tiles::TileKey& a, const tiles::TileKey& b) const;

  const tiles::TilePyramid* pyramid_;
  AgentPersonality personality_;

  // Per-task state (reset by RunTask).
  std::set<tiles::TileKey> visited_detail_;
  std::set<tiles::TileKey> found_;
  std::uint64_t perception_salt_ = 0;
};

}  // namespace fc::sim

#endif  // FORECACHE_SIM_USER_AGENT_H_
