#include "sim/think_time.h"

#include <algorithm>

namespace fc::sim {

double MeanThinkMs(const PhaseThinkTimeModel& model,
                   core::AnalysisPhase phase) {
  switch (phase) {
    case core::AnalysisPhase::kForaging:
      return model.foraging_mean_ms;
    case core::AnalysisPhase::kNavigation:
      return model.navigation_mean_ms;
    case core::AnalysisPhase::kSensemaking:
      return model.sensemaking_mean_ms;
  }
  return model.foraging_mean_ms;
}

double SampleThinkMs(const PhaseThinkTimeModel& model,
                     core::AnalysisPhase phase, Rng& rng) {
  const double mean = MeanThinkMs(model, phase);
  const double sample = rng.Gaussian(mean, mean * model.rel_stddev);
  return std::max(model.min_ms, sample);
}

std::array<double, core::kNumPhases> PhasePriorMs(
    const PhaseThinkTimeModel& model) {
  std::array<double, core::kNumPhases> priors{};
  priors[static_cast<std::size_t>(core::AnalysisPhase::kForaging)] =
      model.foraging_mean_ms;
  priors[static_cast<std::size_t>(core::AnalysisPhase::kSensemaking)] =
      model.sensemaking_mean_ms;
  priors[static_cast<std::size_t>(core::AnalysisPhase::kNavigation)] =
      model.navigation_mean_ms;
  return priors;
}

}  // namespace fc::sim
