// StudyRunner: regenerates the paper's user study — 18 subjects x 3 tasks =
// 54 labeled traces over the synthetic MODIS dataset (paper section 5.3).

#ifndef FORECACHE_SIM_STUDY_H_
#define FORECACHE_SIM_STUDY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/request.h"
#include "sim/modis_dataset.h"
#include "sim/task.h"
#include "sim/user_agent.h"

namespace fc::sim {

struct StudyOptions {
  int num_users = 18;
  std::uint64_t seed = 4242;
};

/// The complete study: dataset, tasks, and all traces.
struct Study {
  ModisDataset dataset;
  std::vector<Task> tasks;
  std::vector<core::Trace> traces;  ///< user-major, task-minor order.
  StudyOptions options;

  /// Traces of one task (1-based id).
  std::vector<core::Trace> TracesForTask(int task_id) const;

  /// Traces of every user except `user_id` (LOOCV training set).
  std::vector<core::Trace> TracesExcludingUser(const std::string& user_id) const;

  /// Distinct user ids, in order of first appearance.
  std::vector<std::string> UserIds() const;
};

/// Builds the dataset and runs every (user, task) pair.
Result<Study> RunStudy(const ModisDatasetOptions& dataset_options,
                       const StudyOptions& study_options = {});

/// Runs the traces against an already-built dataset (reuse across benches).
Result<Study> RunStudyOnDataset(ModisDataset dataset,
                                const StudyOptions& study_options = {});

}  // namespace fc::sim

#endif  // FORECACHE_SIM_STUDY_H_
