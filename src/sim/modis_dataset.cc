#include "sim/modis_dataset.h"

#include <cmath>

#include "array/ops.h"
#include "common/string_utils.h"

namespace fc::sim {

ModisDatasetBuilder::ModisDatasetBuilder(ModisDatasetOptions options)
    : options_(std::move(options)) {}

double ModisDatasetBuilder::NdsiFunc(double visible, double short_wave_infrared) {
  double denom = visible + short_wave_infrared;
  if (denom <= 1e-9) return 0.0;
  return (visible - short_wave_infrared) / denom;
}

ModisDatasetOptions DefaultStudyDataset() {
  ModisDatasetOptions opts;
  opts.terrain.width = 1024;
  opts.terrain.height = 1024;
  opts.num_levels = 6;   // 1024 = 32 * 2^5: one tile at level 0
  opts.tile_size = 32;
  opts.toolbox.value_lo = -1.0;
  opts.toolbox.value_hi = 1.0;
  return opts;
}

Result<ModisDataset> ModisDatasetBuilder::Build(array::ArrayStore* catalog) const {
  const auto& t = options_.terrain;
  Terrain terrain(t);

  // Band array schema: reflectance[latitude, longitude] (paper 5.1.2).
  auto make_band_schema = [&](const std::string& name) {
    return array::ArraySchema::Make(
        name,
        {array::Dimension{"latitude", 0, t.height, options_.tile_size},
         array::Dimension{"longitude", 0, t.width, options_.tile_size}},
        {array::Attribute{"reflectance"}});
  };

  std::vector<array::DenseArray> daily_ndsi;
  for (int day = 0; day < options_.composite_days; ++day) {
    FC_ASSIGN_OR_RETURN(auto vis_schema,
                        make_band_schema(StrFormat("SVIS_d%d", day)));
    FC_ASSIGN_OR_RETURN(auto swir_schema,
                        make_band_schema(StrFormat("SSWIR_d%d", day)));
    array::DenseArray svis(std::move(vis_schema));
    array::DenseArray sswir(std::move(swir_schema));
    for (std::int64_t y = 0; y < t.height; ++y) {
      for (std::int64_t x = 0; x < t.width; ++x) {
        std::int64_t idx = svis.LinearIndex({y, x});
        svis.SetLinear(idx, 0, terrain.VisReflectance(x, y, day));
        sswir.SetLinear(idx, 0, terrain.SwirReflectance(x, y, day));
      }
    }

    // Query 1: store(apply(join(SVIS, SSWIR), ndsi, ndsi_func(...)), NDSI_d).
    FC_ASSIGN_OR_RETURN(auto joined,
                        array::Join(svis, sswir, StrFormat("JOIN_d%d", day)));
    FC_ASSIGN_OR_RETURN(
        auto with_ndsi,
        array::Apply(joined, "ndsi", [](const std::vector<double>& cell) {
          return NdsiFunc(cell[0], cell[1]);
        }));

    if (catalog != nullptr) {
      FC_RETURN_IF_ERROR(catalog->StoreAs(StrFormat("SVIS_d%d", day), svis));
      FC_RETURN_IF_ERROR(catalog->StoreAs(StrFormat("SSWIR_d%d", day), sswir));
      FC_RETURN_IF_ERROR(
          catalog->StoreAs(StrFormat("NDSI_d%d", day), with_ndsi));
    }
    daily_ndsi.push_back(std::move(with_ndsi));
  }

  // Flatten the week: composite min/avg/max NDSI plus the land/sea mask
  // (paper 5.1.1's four numeric attributes).
  FC_ASSIGN_OR_RETURN(
      auto composite_schema,
      array::ArraySchema::Make(
          "NDSI",
          {array::Dimension{"latitude", 0, t.height, options_.tile_size},
           array::Dimension{"longitude", 0, t.width, options_.tile_size}},
          {array::Attribute{"ndsi_min"}, array::Attribute{"ndsi_avg"},
           array::Attribute{"ndsi_max"}, array::Attribute{"land_mask"}}));
  array::DenseArray composite(std::move(composite_schema));

  const auto& first = daily_ndsi[0];
  FC_ASSIGN_OR_RETURN(std::size_t ndsi_attr, first.schema().AttrIndex("ndsi"));
  for (std::int64_t y = 0; y < t.height; ++y) {
    for (std::int64_t x = 0; x < t.width; ++x) {
      std::int64_t idx = first.LinearIndex({y, x});
      double mn = 1.0;
      double mx = -1.0;
      double sum = 0.0;
      for (const auto& day_arr : daily_ndsi) {
        double v = day_arr.GetLinear(idx, ndsi_attr);
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        sum += v;
      }
      composite.SetLinear(idx, 0, mn);
      composite.SetLinear(idx, 1, sum / static_cast<double>(daily_ndsi.size()));
      composite.SetLinear(idx, 2, mx);
      composite.SetLinear(idx, 3, terrain.IsLand(x, y) ? 1.0 : 0.0);
    }
  }
  if (catalog != nullptr) {
    FC_RETURN_IF_ERROR(catalog->StoreAs("NDSI", composite));
  }

  // Tile pyramid + metadata. Aggregation follows attribute semantics:
  // min-of-min, avg-of-avg, max-of-max, any-land (max of mask).
  ModisDataset dataset;
  dataset.options = options_;
  dataset.toolbox = std::make_shared<vision::SignatureToolbox>(
      vision::SignatureToolbox::MakeDefault(options_.toolbox));

  tiles::PyramidBuildOptions build;
  build.num_levels = options_.num_levels;
  build.tile_width = options_.tile_size;
  build.tile_height = options_.tile_size;
  build.agg_kinds = {array::AggKind::kMin, array::AggKind::kAvg,
                     array::AggKind::kMax, array::AggKind::kMax};
  build.signature_attr = "ndsi_avg";
  build.toolbox = dataset.toolbox.get();
  build.training_sample_max = options_.codebook_training_tiles;
  build.seed = options_.seed;

  tiles::TilePyramidBuilder builder(build);
  FC_ASSIGN_OR_RETURN(dataset.pyramid, builder.Build(composite));
  return dataset;
}

}  // namespace fc::sim
