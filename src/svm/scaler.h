// Z-score feature scaling. RBF SVMs are scale-sensitive; the classifier
// pipeline standardizes features before training and prediction.

#ifndef FORECACHE_SVM_SCALER_H_
#define FORECACHE_SVM_SCALER_H_

#include <vector>

#include "common/result.h"

namespace fc::svm {

class FeatureScaler {
 public:
  FeatureScaler() = default;

  /// Learns per-feature mean and stddev. InvalidArgument if `rows` is empty
  /// or ragged. Constant features scale to 0.
  Status Fit(const std::vector<std::vector<double>>& rows);

  bool fitted() const { return !means_.empty(); }
  std::size_t dims() const { return means_.size(); }

  /// (x - mean) / stddev per feature. Precondition: fitted(), matching dims.
  std::vector<double> Transform(const std::vector<double>& row) const;

  /// Transforms every row.
  std::vector<std::vector<double>> TransformAll(
      const std::vector<std::vector<double>>& rows) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace fc::svm

#endif  // FORECACHE_SVM_SCALER_H_
