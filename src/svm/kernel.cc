#include "svm/kernel.h"

#include <cassert>
#include <cmath>

namespace fc::svm {

std::string_view KernelKindToString(KernelKind kind) {
  switch (kind) {
    case KernelKind::kLinear: return "linear";
    case KernelKind::kRbf: return "rbf";
    case KernelKind::kPoly: return "poly";
  }
  return "?";
}

double EvaluateKernel(const KernelParams& params, const std::vector<double>& a,
                      const std::vector<double>& b) {
  assert(a.size() == b.size());
  switch (params.kind) {
    case KernelKind::kLinear: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return dot;
    }
    case KernelKind::kRbf: {
      double ss = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        ss += d * d;
      }
      return std::exp(-params.gamma * ss);
    }
    case KernelKind::kPoly: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return std::pow(params.gamma * dot + params.coef0, params.degree);
    }
  }
  return 0.0;
}

}  // namespace fc::svm
