// Kernel functions for the SVM substrate (the LibSVM stand-in).

#ifndef FORECACHE_SVM_KERNEL_H_
#define FORECACHE_SVM_KERNEL_H_

#include <string_view>
#include <vector>

namespace fc::svm {

enum class KernelKind {
  kLinear,  ///< x . z
  kRbf,     ///< exp(-gamma * |x - z|^2) — the paper's choice (section 4.2.2)
  kPoly,    ///< (gamma * x.z + coef0)^degree
};

std::string_view KernelKindToString(KernelKind kind);

struct KernelParams {
  KernelKind kind = KernelKind::kRbf;
  double gamma = 0.5;
  double coef0 = 0.0;
  int degree = 3;
};

/// K(a, b) under `params`. Vectors must have equal lengths.
double EvaluateKernel(const KernelParams& params, const std::vector<double>& a,
                      const std::vector<double>& b);

}  // namespace fc::svm

#endif  // FORECACHE_SVM_KERNEL_H_
