// Soft-margin SVM trained with a simplified Platt SMO, plus one-vs-one
// multiclass voting — the model class ForeCache's phase classifier uses
// (paper section 4.2.2: multi-class SVM with an RBF kernel).

#ifndef FORECACHE_SVM_SVM_H_
#define FORECACHE_SVM_SVM_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "svm/kernel.h"

namespace fc::svm {

struct SvmOptions {
  KernelParams kernel;
  double c = 1.0;            ///< Soft-margin penalty.
  double tolerance = 1e-3;   ///< KKT violation tolerance.
  std::size_t max_passes = 5;    ///< Consecutive no-change sweeps to converge.
  std::size_t max_iterations = 2000;  ///< Hard cap on full sweeps.
  std::uint64_t seed = 13;   ///< For SMO's randomized second-index choice.
};

/// Binary classifier with labels +1 / -1.
class BinarySvm {
 public:
  BinarySvm() = default;

  /// Trains on rows `x` with labels `y` in {-1, +1}. InvalidArgument on
  /// empty/ragged input, labels outside {-1,+1}, or single-class data.
  static Result<BinarySvm> Train(const std::vector<std::vector<double>>& x,
                                 const std::vector<int>& y, const SvmOptions& options);

  /// Signed decision value f(x) = sum alpha_i y_i K(x_i, x) + b.
  double DecisionValue(const std::vector<double>& x) const;

  /// +1 or -1.
  int Predict(const std::vector<double>& x) const {
    return DecisionValue(x) >= 0.0 ? 1 : -1;
  }

  std::size_t num_support_vectors() const { return support_vectors_.size(); }
  double bias() const { return bias_; }
  const SvmOptions& options() const { return options_; }

 private:
  SvmOptions options_;
  std::vector<std::vector<double>> support_vectors_;
  std::vector<double> coefficients_;  // alpha_i * y_i per support vector
  double bias_ = 0.0;
};

/// One-vs-one multiclass wrapper. Labels are arbitrary ints.
class MulticlassSvm {
 public:
  MulticlassSvm() = default;

  /// Trains k*(k-1)/2 pairwise machines. InvalidArgument if fewer than 2
  /// classes are present.
  static Result<MulticlassSvm> Train(const std::vector<std::vector<double>>& x,
                                     const std::vector<int>& y,
                                     const SvmOptions& options);

  /// Majority vote across pairwise machines; ties break toward the class
  /// with the larger summed decision margin.
  int Predict(const std::vector<double>& x) const;

  /// Vote counts per class label.
  std::map<int, int> Votes(const std::vector<double>& x) const;

  const std::vector<int>& classes() const { return classes_; }
  std::size_t num_machines() const { return machines_.size(); }

 private:
  struct PairwiseMachine {
    int positive_class = 0;
    int negative_class = 0;
    BinarySvm svm;
  };

  std::vector<int> classes_;
  std::vector<PairwiseMachine> machines_;
};

/// Fraction of predictions matching labels (0 for empty input).
double ClassificationAccuracy(const MulticlassSvm& model,
                              const std::vector<std::vector<double>>& x,
                              const std::vector<int>& y);

}  // namespace fc::svm

#endif  // FORECACHE_SVM_SVM_H_
