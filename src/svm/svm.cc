#include "svm/svm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fc::svm {

namespace {

// Full kernel matrix; problems here are small (<= a few thousand rows).
std::vector<std::vector<double>> BuildKernelMatrix(
    const std::vector<std::vector<double>>& x, const KernelParams& kernel) {
  std::size_t n = x.size();
  std::vector<std::vector<double>> k(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double v = EvaluateKernel(kernel, x[i], x[j]);
      k[i][j] = v;
      k[j][i] = v;
    }
  }
  return k;
}

}  // namespace

Result<BinarySvm> BinarySvm::Train(const std::vector<std::vector<double>>& x,
                                   const std::vector<int>& y,
                                   const SvmOptions& options) {
  if (x.empty()) return Status::InvalidArgument("svm: no training rows");
  if (x.size() != y.size()) {
    return Status::InvalidArgument("svm: rows and labels differ in size");
  }
  std::size_t dims = x[0].size();
  bool has_pos = false;
  bool has_neg = false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i].size() != dims) return Status::InvalidArgument("svm: ragged rows");
    if (y[i] == 1) has_pos = true;
    else if (y[i] == -1) has_neg = true;
    else return Status::InvalidArgument("svm: labels must be +1 or -1");
  }
  if (!has_pos || !has_neg) {
    return Status::InvalidArgument("svm: training data must contain both classes");
  }

  const std::size_t n = x.size();
  const double c = options.c;
  const double tol = options.tolerance;
  auto kmat = BuildKernelMatrix(x, options.kernel);
  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  Rng rng(options.seed);

  // Cached decision values f[i] = sum_j alpha_j y_j K(j,i) + b, updated
  // incrementally on every alpha/b change (keeps each sweep O(n) amortized
  // per successful update instead of O(n) per decision evaluation).
  std::vector<double> f(n, 0.0);

  // Simplified Platt SMO (Ng's CS229 variant) with random second index.
  std::size_t passes = 0;
  std::size_t iterations = 0;
  while (passes < options.max_passes && iterations < options.max_iterations) {
    std::size_t num_changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      double ei = f[i] - y[i];
      bool violates = (y[i] * ei < -tol && alpha[i] < c) ||
                      (y[i] * ei > tol && alpha[i] > 0.0);
      if (!violates) continue;

      std::size_t j = rng.UniformUint32(static_cast<std::uint32_t>(n - 1));
      if (j >= i) ++j;
      double ej = f[j] - y[j];

      double ai_old = alpha[i];
      double aj_old = alpha[j];
      double lo;
      double hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      double eta = 2.0 * kmat[i][j] - kmat[i][i] - kmat[j][j];
      if (eta >= 0.0) continue;

      double aj = aj_old - y[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-5) continue;
      double ai = ai_old + y[i] * y[j] * (aj_old - aj);

      alpha[i] = ai;
      alpha[j] = aj;

      double b1 = b - ei - y[i] * (ai - ai_old) * kmat[i][i] -
                  y[j] * (aj - aj_old) * kmat[i][j];
      double b2 = b - ej - y[i] * (ai - ai_old) * kmat[i][j] -
                  y[j] * (aj - aj_old) * kmat[j][j];
      double b_new;
      if (ai > 0.0 && ai < c) b_new = b1;
      else if (aj > 0.0 && aj < c) b_new = b2;
      else b_new = 0.5 * (b1 + b2);

      double dai = (ai - ai_old) * y[i];
      double daj = (aj - aj_old) * y[j];
      double db = b_new - b;
      for (std::size_t kidx = 0; kidx < n; ++kidx) {
        f[kidx] += dai * kmat[i][kidx] + daj * kmat[j][kidx] + db;
      }
      b = b_new;

      ++num_changed;
    }
    ++iterations;
    passes = (num_changed == 0) ? passes + 1 : 0;
  }

  BinarySvm model;
  model.options_ = options;
  model.bias_ = b;
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-9) {
      model.support_vectors_.push_back(x[i]);
      model.coefficients_.push_back(alpha[i] * y[i]);
    }
  }
  return model;
}

double BinarySvm::DecisionValue(const std::vector<double>& x) const {
  double f = bias_;
  for (std::size_t i = 0; i < support_vectors_.size(); ++i) {
    f += coefficients_[i] * EvaluateKernel(options_.kernel, support_vectors_[i], x);
  }
  return f;
}

Result<MulticlassSvm> MulticlassSvm::Train(const std::vector<std::vector<double>>& x,
                                           const std::vector<int>& y,
                                           const SvmOptions& options) {
  if (x.size() != y.size() || x.empty()) {
    return Status::InvalidArgument("multiclass svm: bad training input");
  }
  std::vector<int> classes = y;
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  if (classes.size() < 2) {
    return Status::InvalidArgument("multiclass svm: need >= 2 classes");
  }

  MulticlassSvm model;
  model.classes_ = classes;
  for (std::size_t a = 0; a < classes.size(); ++a) {
    for (std::size_t bp = a + 1; bp < classes.size(); ++bp) {
      std::vector<std::vector<double>> xs;
      std::vector<int> ys;
      for (std::size_t i = 0; i < x.size(); ++i) {
        if (y[i] == classes[a]) {
          xs.push_back(x[i]);
          ys.push_back(1);
        } else if (y[i] == classes[bp]) {
          xs.push_back(x[i]);
          ys.push_back(-1);
        }
      }
      FC_ASSIGN_OR_RETURN(auto svm, BinarySvm::Train(xs, ys, options));
      model.machines_.push_back(
          PairwiseMachine{classes[a], classes[bp], std::move(svm)});
    }
  }
  return model;
}

std::map<int, int> MulticlassSvm::Votes(const std::vector<double>& x) const {
  std::map<int, int> votes;
  for (int c : classes_) votes[c] = 0;
  for (const auto& m : machines_) {
    int winner = m.svm.Predict(x) == 1 ? m.positive_class : m.negative_class;
    ++votes[winner];
  }
  return votes;
}

int MulticlassSvm::Predict(const std::vector<double>& x) const {
  FC_CHECK_MSG(!machines_.empty(), "predict on untrained multiclass svm");
  auto votes = Votes(x);
  // Tie-break by summed signed margins toward each class.
  std::map<int, double> margin;
  for (const auto& m : machines_) {
    double d = m.svm.DecisionValue(x);
    margin[m.positive_class] += d;
    margin[m.negative_class] -= d;
  }
  int best = classes_[0];
  for (int c : classes_) {
    if (votes[c] > votes[best] ||
        (votes[c] == votes[best] && margin[c] > margin[best])) {
      best = c;
    }
  }
  return best;
}

double ClassificationAccuracy(const MulticlassSvm& model,
                              const std::vector<std::vector<double>>& x,
                              const std::vector<int>& y) {
  if (x.empty() || x.size() != y.size()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (model.Predict(x[i]) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(x.size());
}

}  // namespace fc::svm
