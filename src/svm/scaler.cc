#include "svm/scaler.h"

#include <cmath>

#include "common/logging.h"

namespace fc::svm {

Status FeatureScaler::Fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Status::InvalidArgument("scaler: no rows");
  std::size_t dims = rows[0].size();
  if (dims == 0) return Status::InvalidArgument("scaler: zero-dimensional rows");
  for (const auto& r : rows) {
    if (r.size() != dims) return Status::InvalidArgument("scaler: ragged rows");
  }
  means_.assign(dims, 0.0);
  stddevs_.assign(dims, 0.0);
  for (const auto& r : rows) {
    for (std::size_t d = 0; d < dims; ++d) means_[d] += r[d];
  }
  for (double& m : means_) m /= static_cast<double>(rows.size());
  for (const auto& r : rows) {
    for (std::size_t d = 0; d < dims; ++d) {
      double diff = r[d] - means_[d];
      stddevs_[d] += diff * diff;
    }
  }
  for (double& s : stddevs_) {
    s = std::sqrt(s / static_cast<double>(rows.size()));
  }
  return Status::OK();
}

std::vector<double> FeatureScaler::Transform(const std::vector<double>& row) const {
  FC_CHECK_MSG(fitted(), "scaler used before Fit");
  FC_CHECK(row.size() == means_.size());
  std::vector<double> out(row.size());
  for (std::size_t d = 0; d < row.size(); ++d) {
    out[d] = stddevs_[d] > 1e-12 ? (row[d] - means_[d]) / stddevs_[d] : 0.0;
  }
  return out;
}

std::vector<std::vector<double>> FeatureScaler::TransformAll(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(Transform(r));
  return out;
}

}  // namespace fc::svm
